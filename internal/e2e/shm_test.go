package e2e

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	"colza/internal/bufpool"
	"colza/internal/catalyst"
	"colza/internal/core"
	"colza/internal/margo"
	"colza/internal/mercury"
	"colza/internal/na"
	"colza/internal/obs"
	"colza/internal/sim"
	"colza/internal/ssg"
)

// smTestDir makes a short-pathed segment directory: unix socket paths are
// length-limited, and t.TempDir() under a long test name can exceed it.
func smTestDir(t *testing.T) string {
	t.Helper()
	dir, err := os.MkdirTemp("", "czsm-e2e-")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(dir) })
	return dir
}

// startSMServer launches one staging server whose RPC endpoint listens on
// shared memory and TCP simultaneously (the sm+tcp composite address ends
// up in the membership view, so peers and clients route per link). MoNA
// stays on TCP: collective traffic is server-to-server and exercises the
// plain transport alongside the sm one.
func startSMServer(t *testing.T, dir, bootstrap string) (*core.Server, *na.DualEndpoint) {
	t.Helper()
	rpcEP, err := na.ListenDual("127.0.0.1:0", dir, "")
	if err != nil {
		t.Fatal(err)
	}
	monaEP, err := na.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.StartServer(rpcEP, monaEP, core.ServerConfig{
		Bootstrap: bootstrap,
		// Generous failure-detector settings, as in startTCPServer: under
		// -race scheduling stalls must not read as member failures.
		SSG: ssg.Config{GossipPeriod: 10 * time.Millisecond, PingTimeout: 200 * time.Millisecond, SuspectPeriods: 30},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s, rpcEP
}

// TestColzaOverSM runs the whole stack — SSG membership, 2PC activation,
// staging, MoNA collectives, IceT compositing, growth and scale-down —
// with every server listening on sm+tcp. All ranks are colocated, so every
// RPC link must pin the shared-memory route and every staged block must be
// pulled zero-copy from the exposer's segment, and shutdown must leave no
// segment files behind.
func TestColzaOverSM(t *testing.T) {
	dir := smTestDir(t)

	// Runs after every shutdown below (LIFO): all sockets, rings, and
	// bulk arenas must be unlinked once the deployment is down.
	defer func() {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("reading segment dir: %v", err)
		}
		for _, e := range entries {
			t.Errorf("orphaned segment file after shutdown: %s", e.Name())
		}
	}()

	s0, _ := startSMServer(t, dir, "")
	defer s0.Shutdown()
	s1, _ := startSMServer(t, dir, s0.Addr())
	defer s1.Shutdown()
	waitMembers(t, []*core.Server{s0, s1}, 2)

	clientEP, err := na.ListenDual("127.0.0.1:0", dir, "")
	if err != nil {
		t.Fatal(err)
	}
	mi := margo.NewInstance(clientEP)
	defer mi.Finalize()
	client := core.NewClient(mi)
	reg := obs.NewRegistry()
	client.SetObserver(reg)
	admin := core.NewAdminClient(mi)

	pcfg, _ := json.Marshal(catalyst.IsoConfig{
		Field: "value", IsoValues: []float64{8}, Width: 64, Height: 64,
		ScalarRange: [2]float64{0, 32}, EmitImage: true,
	})
	for _, s := range []*core.Server{s0, s1} {
		if err := admin.CreatePipeline(s.Addr(), "viz", catalyst.IsoPipelineType, pcfg); err != nil {
			t.Fatal(err)
		}
	}

	h := client.Handle("viz", s0.Addr())
	h.SetTimeout(30 * time.Second)
	mb := sim.DefaultMandelbulb([3]int{16, 16, 8}, 4)

	runIteration(t, h, mb, 1, 2)

	// Grow to three servers, then iteration 2 uses all three.
	s2, _ := startSMServer(t, dir, s0.Addr())
	defer s2.Shutdown()
	waitMembers(t, []*core.Server{s0, s1, s2}, 3)
	if err := admin.CreatePipeline(s2.Addr(), "viz", catalyst.IsoPipelineType, pcfg); err != nil {
		t.Fatal(err)
	}
	runIteration(t, h, mb, 2, 3)

	// Scale down via the admin interface; iteration 3 runs on two again.
	if err := admin.RequestLeave(s2.Addr()); err != nil {
		t.Fatal(err)
	}
	waitMembers(t, []*core.Server{s0, s1}, 2)
	runIteration(t, h, mb, 3, 2)

	// Everything is colocated, so the client must have pinned sm to every
	// server it talked to and never fallen back to TCP.
	snap := reg.Snapshot()
	if got := snap.Counters["na.route.sm_preferred"]; got < 2 {
		t.Errorf("na.route.sm_preferred = %d, want >= 2 (client links did not ride shared memory)", got)
	}
	if got := snap.Counters["na.route.tcp_fallback"]; got != 0 {
		t.Errorf("na.route.tcp_fallback = %d, want 0 (a colocated link fell back to TCP)", got)
	}
	if got := snap.Counters["na.shm.frames.tx"]; got == 0 {
		t.Error("na.shm.frames.tx = 0: no RPC frame crossed the shared-memory ring")
	}
	// Every staged block must have been pulled zero-copy out of the
	// client's bulk arena by some server — the chunked RPC path stays cold.
	var pulls int64
	for _, s := range []*core.Server{s0, s1, s2} {
		pulls += s.Obs.Counter("na.shm.pull.local").Value()
	}
	if want := int64(3 * mb.Blocks); pulls < want {
		t.Errorf("na.shm.pull.local total = %d, want >= %d (bulk pulls not zero-copy)", pulls, want)
	}
}

// TestChaosStageRetryOverSM reruns the stage-retry buffer-ownership chaos
// scenario with the deployment on sm+tcp endpoints: injected drops of a
// stage request and a stage response force at-least-once retries while the
// bulk region stays exposed in the client's shared arena, and the retry's
// zero-copy pull must still observe the original bytes — never a recycled
// buffer. Every exposed region must be released by shutdown on all ranks.
func TestChaosStageRetryOverSM(t *testing.T) {
	dir := smTestDir(t)

	var servers []*core.Server
	var serverEPs []*na.DualEndpoint
	for i := 0; i < 2; i++ {
		boot := ""
		if i > 0 {
			boot = servers[0].Addr()
		}
		s, ep := startSMServer(t, dir, boot)
		servers = append(servers, s)
		serverEPs = append(serverEPs, ep)
		defer s.Shutdown()
	}
	waitMembers(t, servers, 2)

	checksumMu.Lock()
	instsBefore := len(checksumInsts)
	checksumMu.Unlock()

	clientEP, err := na.ListenDual("127.0.0.1:0", dir, "")
	if err != nil {
		t.Fatal(err)
	}
	mi := margo.NewInstance(clientEP)
	defer mi.Finalize()
	client := core.NewClient(mi)
	reg := obs.NewRegistry()
	client.SetObserver(reg)
	admin := core.NewAdminClient(mi)
	for _, s := range servers {
		if err := admin.CreatePipeline(s.Addr(), "viz", "checksum", nil); err != nil {
			t.Fatal(err)
		}
	}

	// The leak check must hold whatever else the test concludes.
	defer func() {
		classes := []*mercury.Class{mi.Class()}
		for _, s := range servers {
			classes = append(classes, s.MI.Class())
		}
		mercury.VerifyNoExposedLeaks(t, classes...)
	}()

	h := client.Handle("viz", servers[0].Addr())
	h.SetTimeout(250 * time.Millisecond)

	const iters, blocks = 3, 5
	const blockLen = 64 << 10
	for it := uint64(1); it <= iters; it++ {
		if _, err := h.Activate(it); err != nil {
			t.Fatalf("iteration %d activate: %v", it, err)
		}
		if it == 2 {
			// Same mid-run plan as the inproc ownership test, installed on
			// every dual endpoint so drops hit whichever transport the route
			// picked (here: the sm ring). Rule 0 drops a stage *request* —
			// client times out and retries with the bulk region still
			// exposed. Rule 1 drops a stage *response* from server 0 — the
			// server already pulled the block, so the retry's pull re-reads
			// a region whose first zero-copy pull completed long ago.
			plan := na.NewFaultPlan(7).SetClassifier(func(data []byte) string {
				if name, ok := mercury.RPCNameOf(data); ok {
					return name
				}
				return "response"
			})
			plan.Add(na.FaultRule{Label: "colza::stage", Nth: 1, Drop: true})
			plan.Add(na.FaultRule{Label: "response", From: servers[0].Addr(), To: mi.Addr(), Nth: 2, Drop: true})
			clientEP.SetFaultPlan(plan)
			for _, ep := range serverEPs {
				ep.SetFaultPlan(plan)
			}
			defer func() {
				for rule := 0; rule < 2; rule++ {
					if plan.Fired(rule) < 1 {
						t.Errorf("fault rule %d never fired (%s)", rule, plan)
					}
				}
			}()
		}
		for b := 0; b < blocks; b++ {
			// Pooling discipline under test: the block's pooled buffer is
			// recycled the moment Stage returns — legal because Stage
			// releases its arena region before returning, retries included.
			data := bufpool.Get(blockLen)
			for i := range data {
				data[i] = blockByte(it, b, i)
			}
			err := h.Stage(it, core.BlockMeta{Field: "v", BlockID: b, Type: "raw"}, data)
			bufpool.Put(data)
			if err != nil {
				t.Fatalf("iteration %d stage %d: %v", it, b, err)
			}
		}
		if _, err := h.Execute(it); err != nil {
			t.Fatalf("iteration %d execute: %v", it, err)
		}
		if err := h.Deactivate(it); err != nil {
			t.Fatalf("iteration %d deactivate: %v", it, err)
		}
	}
	clientEP.SetFaultPlan(nil)
	for _, ep := range serverEPs {
		ep.SetFaultPlan(nil)
	}

	// The retry path must actually have run over the sm route.
	snap := reg.Snapshot()
	if got := snap.Counters["colza.stage.retries{pipeline=viz}"]; got < 1 {
		t.Errorf("fault plan produced %d stage retries, want >= 1", got)
	}
	if got := snap.Counters["na.route.sm_preferred"]; got < 1 {
		t.Errorf("na.route.sm_preferred = %d: chaos ran over TCP, not shared memory", got)
	}
	var pulls int64
	for _, s := range servers {
		pulls += s.Obs.Counter("na.shm.pull.local").Value()
	}
	if want := int64(iters * blocks); pulls < want {
		t.Errorf("na.shm.pull.local total = %d, want >= %d (stage pulls not zero-copy)", pulls, want)
	}

	checksumMu.Lock()
	defer checksumMu.Unlock()
	var staged int
	for _, p := range checksumInsts[instsBefore:] {
		p.mu.Lock()
		staged += p.staged
		for _, c := range p.corrupt {
			t.Errorf("server observed recycled/corrupted stage buffer: %s", c)
		}
		p.mu.Unlock()
	}
	if want := iters * blocks; staged < want {
		t.Errorf("backends saw %d staged blocks, want >= %d", staged, want)
	}
}
