package e2e

// The live elasticity suite: the elastic controller wired through
// elastic.CoreDeps against real in-process deployments, driven by actual
// simulation loops. The stats pipeline's integer-valued run_* keys give
// exact oracle comparisons, so a run that scaled up and back down must
// reproduce a static cluster's cumulative statistics bit for bit.

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"colza/internal/autoscale"
	"colza/internal/catalyst"
	"colza/internal/core"
	"colza/internal/elastic"
	"colza/internal/margo"
	"colza/internal/na"
	"colza/internal/obs"
	"colza/internal/ssg"
)

// slowStatsType wraps the stats pipeline with an iteration-windowed
// execute delay — the scripted "slow phase" that makes a run exceed the
// controller's latency target without perturbing the statistics (the
// run_* keys depend only on the staged data, never on timing or on how
// blocks were distributed across servers).
const slowStatsType = "e2e/slowstats"

type slowStatsConfig struct {
	Field    string `json:"field"`
	SlowFrom uint64 `json:"slow_from"`
	SlowTo   uint64 `json:"slow_to"`
	DelayMS  int    `json:"delay_ms"`
}

// slowStats delegates everything to a real StatsPipeline; the explicit
// Export/ImportState passthrough keeps it a StatefulBackend, so the
// migration and checkpoint layers treat it exactly like plain stats.
type slowStats struct {
	inner core.StatefulBackend
	cfg   slowStatsConfig
}

func (s *slowStats) Activate(ctx core.IterationContext) error { return s.inner.Activate(ctx) }
func (s *slowStats) Stage(it uint64, meta core.BlockMeta, data []byte) error {
	return s.inner.Stage(it, meta, data)
}
func (s *slowStats) Execute(it uint64) (core.ExecResult, error) {
	if s.cfg.DelayMS > 0 && it >= s.cfg.SlowFrom && it <= s.cfg.SlowTo {
		time.Sleep(time.Duration(s.cfg.DelayMS) * time.Millisecond)
	}
	return s.inner.Execute(it)
}
func (s *slowStats) Deactivate(it uint64) error      { return s.inner.Deactivate(it) }
func (s *slowStats) Destroy() error                  { return s.inner.Destroy() }
func (s *slowStats) ExportState() ([]byte, error)    { return s.inner.ExportState() }
func (s *slowStats) ImportState(data []byte) error   { return s.inner.ImportState(data) }

var slowStatsOnce sync.Once

func registerSlowStats() {
	slowStatsOnce.Do(func() {
		core.RegisterPipelineType(slowStatsType, func(cfg json.RawMessage) (core.Backend, error) {
			var c slowStatsConfig
			if len(cfg) > 0 {
				if err := json.Unmarshal(cfg, &c); err != nil {
					return nil, err
				}
			}
			factory, ok := core.LookupPipelineType(catalyst.StatsPipelineType)
			if !ok {
				return nil, fmt.Errorf("e2e: %s not registered", catalyst.StatsPipelineType)
			}
			raw, err := json.Marshal(catalyst.StatsConfig{Field: c.Field})
			if err != nil {
				return nil, err
			}
			inner, err := factory(raw)
			if err != nil {
				return nil, err
			}
			return &slowStats{inner: inner.(core.StatefulBackend), cfg: c}, nil
		})
	})
}

// statsTotals is the analytic oracle for statsBlock data: the cumulative
// count and sum after iters iterations of blocks blocks.
func statsTotals(iters, blocks int) (count, sum float64) {
	for it := 1; it <= iters; it++ {
		for b := 0; b < blocks; b++ {
			for i := 0; i < 8; i++ {
				count++
				sum += float64(1000*it + 100*b + i)
			}
		}
	}
	return count, sum
}

// elasticArm is one live deployment the controller grows and shrinks: an
// in-proc fabric whose launcher starts real servers that bootstrap from
// the first one, exactly like the process scale-up path.
type elasticArm struct {
	t      *testing.T
	net    *na.InprocNetwork
	prefix string
	ssgCfg ssg.Config
	client *core.Client
	admin  *core.AdminClient
	reg    *obs.Registry

	mu      sync.Mutex
	servers []*core.Server
	nextID  int
}

func newElasticArm(t *testing.T, prefix string) *elasticArm {
	t.Helper()
	a := &elasticArm{
		t: t, net: na.NewInprocNetwork(), prefix: prefix,
		ssgCfg: ssg.Config{GossipPeriod: 5 * time.Millisecond, PingTimeout: 100 * time.Millisecond, SuspectPeriods: 20},
		reg:    obs.NewRegistry(),
	}
	t.Cleanup(a.shutdownAll)
	if err := a.launch(); err != nil {
		t.Fatal(err)
	}
	ep, err := a.net.Listen(prefix + "-client")
	if err != nil {
		t.Fatal(err)
	}
	mi := margo.NewInstance(ep)
	t.Cleanup(mi.Finalize)
	a.client = core.NewClient(mi)
	a.admin = core.NewAdminClient(mi)
	return a
}

// launch starts one more server — the arm's elastic.Launcher. It
// bootstraps from the first server that is still alive and in the group,
// so relaunches keep working after earlier members crashed or left.
func (a *elasticArm) launch() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	cfg := core.ServerConfig{SSG: a.ssgCfg, StateReplicas: 1}
	cfg.SSG.Seed = int64(a.nextID + 1)
	for _, s := range a.servers {
		if !s.MI.Finalized() && !s.Provider.Leaving() {
			cfg.Bootstrap = s.Addr()
			break
		}
	}
	s, err := core.StartInprocServer(a.net, fmt.Sprintf("%s%d", a.prefix, a.nextID), cfg)
	if err != nil {
		return err
	}
	a.nextID++
	a.servers = append(a.servers, s)
	return nil
}

func (a *elasticArm) s0() *core.Server {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.servers[0]
}

func (a *elasticArm) server(i int) *core.Server {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.servers[i]
}

func (a *elasticArm) size() int { return len(a.s0().Group.Members()) }

func (a *elasticArm) shutdownAll() {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, s := range a.servers {
		s.Shutdown()
	}
}

// startController wires a controller to the arm through CoreDeps — the
// exact production wiring of cmd/colza-server — and starts its sensing
// loop.
func (a *elasticArm) startController(cfg elastic.Config) *elastic.Controller {
	a.t.Helper()
	ctl, err := elastic.NewController(cfg,
		elastic.CoreDeps(a.s0().Addr(), a.s0().Group.Members, a.admin, elastic.LauncherFunc(a.launch), a.reg))
	if err != nil {
		a.t.Fatal(err)
	}
	if err := ctl.Start(); err != nil {
		a.t.Fatal(err)
	}
	a.t.Cleanup(ctl.Stop)
	return ctl
}

func (a *elasticArm) counter(name string) int64 { return a.reg.Counter(name).Value() }

// assertLaunchConservation holds the controller's books to the invariant
// launch_attempts == launch_errors + scaleups.
func assertLaunchConservation(t *testing.T, reg *obs.Registry) {
	t.Helper()
	att := reg.Counter("elastic.launch_attempts").Value()
	errs := reg.Counter("elastic.launch_errors").Value()
	ups := reg.Counter("elastic.scaleups").Value()
	if att != errs+ups {
		t.Errorf("launch conservation violated: attempts=%d != errors=%d + scaleups=%d", att, errs, ups)
	}
}

var elasticCtlConfig = elastic.Config{
	Target: 50 * time.Millisecond, Floor: 1, Ceiling: 2, Confirm: 1,
	CooldownObs: 1, Cooldown: 300 * time.Millisecond, Poll: 10 * time.Millisecond,
	LaunchRetries: 2, JoinTimeout: 20 * time.Second,
}

// TestElasticScaleUpThenDownMatchesOracle is the live closed loop end to
// end: a scripted slow phase pushes execute past the target, the
// controller senses it through the admin metrics RPCs and launches a real
// second server (provisioned with the pipeline via pipeline_defs); when
// the load drops, it releases that server through the admin leave RPC —
// whose graceful migration carries the stateful pipeline's moments back.
// The run's cumulative statistics must equal a static one-server oracle's
// exactly.
func TestElasticScaleUpThenDownMatchesOracle(t *testing.T) {
	registerSlowStats()
	const blocks = 4
	const slowIters = 8
	const maxIters = 40

	arm := newElasticArm(t, "elo")
	pcfg, _ := json.Marshal(slowStatsConfig{Field: "f", SlowFrom: 1, SlowTo: slowIters, DelayMS: 150})
	if err := arm.admin.CreatePipeline(arm.s0().Addr(), "stats", slowStatsType, pcfg); err != nil {
		t.Fatal(err)
	}
	ctl := arm.startController(elasticCtlConfig)

	h := arm.client.Handle("stats", arm.s0().Addr())
	h.SetTimeout(10 * time.Second)

	// Slow phase: the controller must scale up within these iterations.
	upAt := 0
	it := 1
	for ; it <= slowIters; it++ {
		runStatsIteration(t, h, uint64(it), blocks)
		if upAt == 0 && arm.size() == 2 {
			upAt = it
		}
	}
	if upAt == 0 {
		t.Fatalf("controller never scaled up within %d slow iterations; status: %+v", slowIters, ctl.Status())
	}
	t.Logf("scaled up to 2 servers during iteration %d", upAt)

	// Fast phase: the load drops below the low-water band and the
	// controller must release the extra server again.
	downAt := 0
	for ; it <= maxIters && downAt == 0; it++ {
		runStatsIteration(t, h, uint64(it), blocks)
		if arm.size() == 1 {
			downAt = it
		}
	}
	if downAt == 0 {
		t.Fatalf("controller never scaled back down by iteration %d; status: %+v", maxIters, ctl.Status())
	}
	t.Logf("scaled down to 1 server during iteration %d", downAt)
	total := it - 1
	ctl.Stop()
	probe := probeRunStats(t, h, uint64(total+1))

	// Oracle arm: a static one-server cluster runs the identical schedule
	// (delays off — they never affect the data).
	onet := na.NewInprocNetwork()
	osrv, err := core.StartInprocServer(onet, "elo-oracle0", core.ServerConfig{
		SSG: ssg.Config{GossipPeriod: 5 * time.Millisecond, PingTimeout: 100 * time.Millisecond, SuspectPeriods: 20, Seed: 1},
		StateReplicas: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(osrv.Shutdown)
	oep, _ := onet.Listen("elo-oracle-client")
	omi := margo.NewInstance(oep)
	t.Cleanup(omi.Finalize)
	oadmin := core.NewAdminClient(omi)
	ocfg, _ := json.Marshal(slowStatsConfig{Field: "f"})
	if err := oadmin.CreatePipeline(osrv.Addr(), "stats", slowStatsType, ocfg); err != nil {
		t.Fatal(err)
	}
	oh := core.NewClient(omi).Handle("stats", osrv.Addr())
	oh.SetTimeout(10 * time.Second)
	for oit := 1; oit <= total; oit++ {
		runStatsIteration(t, oh, uint64(oit), blocks)
	}
	oracle := probeRunStats(t, oh, uint64(total+1))

	// Strict equality on every cumulative key, and against the analytic
	// totals so both arms cannot be wrong together.
	for _, key := range []string{"run_count", "run_sum", "run_mean", "run_min", "run_max"} {
		if probe[key] != oracle[key] {
			t.Errorf("%s: elastic arm %v != oracle %v", key, probe[key], oracle[key])
		}
	}
	wantCount, wantSum := statsTotals(total, blocks)
	if oracle["run_count"] != wantCount || oracle["run_sum"] != wantSum {
		t.Errorf("oracle run_count=%v run_sum=%v, want %v and %v",
			oracle["run_count"], oracle["run_sum"], wantCount, wantSum)
	}

	// The controller's books: at least one scale-up and one scale-down,
	// no failed launches or leaves, and launch conservation.
	if ups := arm.counter("elastic.scaleups"); ups < 1 {
		t.Errorf("elastic.scaleups = %d, want >= 1", ups)
	}
	if downs := arm.counter("elastic.scaledowns"); downs < 1 {
		t.Errorf("elastic.scaledowns = %d, want >= 1", downs)
	}
	for _, name := range []string{"elastic.launch_errors", "elastic.leave_errors", "elastic.provision_errors"} {
		if v := arm.counter(name); v != 0 {
			t.Errorf("%s = %d, want 0", name, v)
		}
	}
	assertLaunchConservation(t, arm.reg)
	// The released server migrated its stateful share without loss.
	if v := arm.server(1).Obs.Snapshot().Counters["core.migrate.errors"]; v != 0 {
		t.Errorf("core.migrate.errors on the released server = %d, want 0", v)
	}
}

// TestElasticCrashedNewcomerCheckpointRecovery drives the checkpoint
// recovery path through the controller: the launched newcomer crashes
// abruptly after folding iterations into its stateful share; the
// survivor's replica re-seeds the moments at the next activate, and the
// controller — still over target — relaunches. The analytic totals prove
// no iteration was lost.
func TestElasticCrashedNewcomerCheckpointRecovery(t *testing.T) {
	registerSlowStats()
	const blocks = 4
	const totalIters = 12

	arm := newElasticArm(t, "elc")
	pcfg, _ := json.Marshal(slowStatsConfig{Field: "f", SlowFrom: 1, SlowTo: totalIters, DelayMS: 150})
	if err := arm.admin.CreatePipeline(arm.s0().Addr(), "stats", slowStatsType, pcfg); err != nil {
		t.Fatal(err)
	}
	ctl := arm.startController(elasticCtlConfig)

	h := arm.client.Handle("stats", arm.s0().Addr())
	h.SetTimeout(10 * time.Second)

	upAt, crashedAt := 0, 0
	for it := 1; it <= totalIters; it++ {
		runStatsIteration(t, h, uint64(it), blocks)
		if upAt == 0 && arm.size() == 2 {
			upAt = it
		}
		if upAt != 0 && crashedAt == 0 && it >= upAt+2 {
			// The newcomer dies without any announcement, after two full
			// iterations folded into its running moments (each deactivate
			// shipped a checkpoint to its ring successor).
			arm.server(1).Shutdown()
			waitMembers(t, []*core.Server{arm.s0()}, 1)
			crashedAt = it
		}
	}
	if crashedAt == 0 {
		t.Fatalf("newcomer never launched and crashed (upAt=%d); status: %+v", upAt, ctl.Status())
	}
	t.Logf("scaled up at iteration %d, crashed the newcomer after iteration %d", upAt, crashedAt)
	ctl.Stop()
	probe := probeRunStats(t, h, totalIters+1)

	wantCount, wantSum := statsTotals(totalIters, blocks)
	if probe["run_count"] != wantCount || probe["run_sum"] != wantSum {
		t.Errorf("run_count=%v run_sum=%v, want %v and %v (crashed newcomer's share lost?)",
			probe["run_count"], probe["run_sum"], wantCount, wantSum)
	}
	if got := arm.s0().Obs.Snapshot().Counters["core.state.recover.count{pipeline=stats}"]; got < 1 {
		t.Errorf("core.state.recover.count{pipeline=stats} = %d, want >= 1", got)
	}
	if ups := arm.counter("elastic.scaleups"); ups < 1 {
		t.Errorf("elastic.scaleups = %d, want >= 1", ups)
	}
	assertLaunchConservation(t, arm.reg)
}

// TestElasticLaunchFailureRetriesLive injects a daemon that comes up and
// dies before ever joining the group: the controller must burn the join
// timeout, count a launch error, retry with backoff, and succeed on the
// second attempt against the real cluster.
func TestElasticLaunchFailureRetriesLive(t *testing.T) {
	arm := newElasticArm(t, "elf")
	attempt := 0
	launcher := elastic.LauncherFunc(func() error {
		attempt++
		if attempt == 1 {
			// A server that starts into its own group — it never appears in
			// the membership — and crashes immediately.
			rogue, err := core.StartInprocServer(arm.net, "elf-rogue", core.ServerConfig{GroupName: "rogue", SSG: arm.ssgCfg})
			if err != nil {
				return err
			}
			rogue.Shutdown()
			return nil
		}
		return arm.launch()
	})
	ctl, err := elastic.NewController(elastic.Config{
		Target: 50 * time.Millisecond, Floor: 1, Ceiling: 2, Confirm: 1,
		CooldownObs: 1, Cooldown: 50 * time.Millisecond,
		LaunchRetries: 2, LaunchBackoff: 20 * time.Millisecond, JoinTimeout: 400 * time.Millisecond,
	}, elastic.CoreDeps(arm.s0().Addr(), arm.s0().Group.Members, arm.admin, launcher, arm.reg))
	if err != nil {
		t.Fatal(err)
	}

	// One synthetic over-target batch against the real actuators.
	v := ctl.Tick([]autoscale.Sample{{Exec: 500 * time.Millisecond}})
	if v.Action != "scale-up" || !v.Actuated {
		t.Fatalf("verdict: %+v", v)
	}
	// The actuated scale-up is synchronous: waitJoin already saw the
	// newcomer in the leader's membership.
	if n := arm.size(); n != 2 {
		t.Fatalf("membership after actuated scale-up: %d, want 2", n)
	}
	att := arm.counter("elastic.launch_attempts")
	errs := arm.counter("elastic.launch_errors")
	ups := arm.counter("elastic.scaleups")
	if att != 2 || errs != 1 || ups != 1 {
		t.Fatalf("attempts=%d errors=%d scaleups=%d, want 2/1/1", att, errs, ups)
	}
	assertLaunchConservation(t, arm.reg)
}

// TestElasticLeaderCrashHandsOff runs controllers on both servers of a
// live pair: the follower holds with not-leader verdicts while the leader
// is alive, then the leader crashes mid-cooldown; the follower's
// controller observes itself at the head of the shrunken membership,
// opens a takeover cooldown, and only after it expires actuates a real
// scale-up.
func TestElasticLeaderCrashHandsOff(t *testing.T) {
	arm := newElasticArm(t, "elh")
	if err := arm.launch(); err != nil { // elh1, the follower
		t.Fatal(err)
	}
	waitMembers(t, []*core.Server{arm.s0(), arm.server(1)}, 2)
	follower := arm.server(1)

	ctl, err := elastic.NewController(elastic.Config{
		Target: 50 * time.Millisecond, Floor: 1, Ceiling: 3, Confirm: 1,
		CooldownObs: 1, Cooldown: 100 * time.Millisecond,
		LaunchRetries: 2, JoinTimeout: 20 * time.Second,
	}, elastic.CoreDeps(follower.Addr(), follower.Group.Members, arm.admin, elastic.LauncherFunc(arm.launch), arm.reg))
	if err != nil {
		t.Fatal(err)
	}

	over := []autoscale.Sample{{Exec: 500 * time.Millisecond}}
	if v := ctl.Tick(over); v.Action != "hold" || v.Reason != "not-leader" {
		t.Fatalf("follower verdict with leader alive: %+v", v)
	}

	// The leader crashes; SWIM evicts it from the follower's view.
	arm.s0().Shutdown()
	deadline := time.Now().Add(20 * time.Second)
	for len(follower.Group.Members()) != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("follower never evicted the crashed leader: %v", follower.Group.Members())
		}
		time.Sleep(3 * time.Millisecond)
	}

	// First tick after the crash: takeover, and a fresh cooldown guards it.
	if v := ctl.Tick(over); v.Action != "hold" || v.Reason != "cooldown-window" {
		t.Fatalf("first post-takeover verdict: %+v", v)
	}
	if tk := arm.counter("elastic.takeovers"); tk != 1 {
		t.Fatalf("elastic.takeovers = %d, want 1", tk)
	}
	if ups := arm.counter("elastic.scaleups"); ups != 0 {
		t.Fatalf("scale-up actuated inside the takeover cooldown (scaleups=%d)", ups)
	}

	// After the cooldown expires the new leader actuates for real.
	time.Sleep(120 * time.Millisecond)
	v := ctl.Tick(over)
	if v.Action != "scale-up" || !v.Actuated {
		t.Fatalf("post-cooldown verdict: %+v", v)
	}
	if n := len(follower.Group.Members()); n != 2 {
		t.Fatalf("membership after handoff scale-up: %d, want 2", n)
	}
	if ups := arm.counter("elastic.scaleups"); ups != 1 {
		t.Fatalf("elastic.scaleups = %d, want 1", ups)
	}
	assertLaunchConservation(t, arm.reg)
}
