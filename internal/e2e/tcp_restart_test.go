package e2e

import (
	"encoding/json"
	"testing"
	"time"

	"colza/internal/catalyst"
	"colza/internal/core"
	"colza/internal/margo"
	"colza/internal/na"
	"colza/internal/sim"
)

// TestColzaOverTCPServerRestart runs the full pipeline cycle on real TCP
// sockets and crashes a staging server between iterations: membership must
// converge on the survivor, a replacement must join through it, and the
// next activate/stage/execute/deactivate cycle must succeed on the new
// group — the elastic recovery story over the actual wire transport.
func TestColzaOverTCPServerRestart(t *testing.T) {
	s0 := startTCPServer(t, "")
	defer s0.Shutdown()
	s1 := startTCPServer(t, s0.Addr())
	waitMembers(t, []*core.Server{s0, s1}, 2)

	clientEP, err := na.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	mi := margo.NewInstance(clientEP)
	defer mi.Finalize()
	client := core.NewClient(mi)
	admin := core.NewAdminClient(mi)

	pcfg, _ := json.Marshal(catalyst.IsoConfig{
		Field: "value", IsoValues: []float64{8}, Width: 64, Height: 64,
		ScalarRange: [2]float64{0, 32}, EmitImage: true,
	})
	for _, s := range []*core.Server{s0, s1} {
		if err := admin.CreatePipeline(s.Addr(), "viz", catalyst.IsoPipelineType, pcfg); err != nil {
			t.Fatal(err)
		}
	}

	h := client.Handle("viz", s0.Addr())
	// Short enough that the first activate round after the crash — which
	// still proposes the pinned view including dead s1 — fails over
	// quickly instead of burning a full long RPC timeout on it.
	h.SetTimeout(5 * time.Second)
	mb := sim.DefaultMandelbulb([3]int{16, 16, 8}, 4)

	// Iteration 1 on the original pair.
	runIteration(t, h, mb, 1, 2)

	// Crash s1 mid-run (no leave announcement — the failure path), then
	// bring up a replacement that bootstraps through the survivor.
	s1.Shutdown()
	s2 := startTCPServer(t, s0.Addr())
	defer s2.Shutdown()
	waitMembers(t, []*core.Server{s0, s2}, 2)
	if err := admin.CreatePipeline(s2.Addr(), "viz", catalyst.IsoPipelineType, pcfg); err != nil {
		t.Fatal(err)
	}

	// Iteration 2 pins a fresh view over {s0, s2}; the client's stale
	// knowledge of s1 must wash out through refresh + eviction.
	runIteration(t, h, mb, 2, 2)
}
