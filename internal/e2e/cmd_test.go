package e2e

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"colza/internal/catalyst"
	"colza/internal/core"
	"colza/internal/margo"
	"colza/internal/na"
	"colza/internal/sim"
)

// buildBinaries compiles the CLI tools once into a temp dir.
func buildBinaries(t *testing.T) (server, ctl string) {
	t.Helper()
	dir := t.TempDir()
	server = filepath.Join(dir, "colza-server")
	ctl = filepath.Join(dir, "colza-ctl")
	for _, b := range []struct{ out, pkg string }{
		{server, "colza/cmd/colza-server"},
		{ctl, "colza/cmd/colza-ctl"},
	} {
		cmd := exec.Command("go", "build", "-o", b.out, b.pkg)
		cmd.Dir = repoRoot(t)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", b.pkg, err, out)
		}
	}
	return server, ctl
}

func repoRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Dir(strings.TrimSpace(string(out)))
}

// TestCommandLineDeployment drives the real binaries: two colza-server
// processes bootstrapped through the connection file, administered with
// colza-ctl, and used by an in-test client for one in situ iteration.
func TestCommandLineDeployment(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs subprocesses")
	}
	serverBin, ctlBin := buildBinaries(t)
	dir := t.TempDir()
	connFile := filepath.Join(dir, "colza.addr")

	startServer := func(name string) *exec.Cmd {
		// -codec shuffle exercises the accepted-set restriction end to end:
		// the servers advertise {raw, shuffle} and the client below stages
		// through the shuffle codec it negotiates.
		cmd := exec.Command(serverBin,
			"-listen", "127.0.0.1:0", "-listen-mona", "127.0.0.1:0",
			"-connfile", connFile, "-gossip-ms", "20", "-codec", "shuffle",
			"-sm-dir", dir)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting %s: %v", name, err)
		}
		t.Cleanup(func() {
			if cmd.Process != nil {
				cmd.Process.Kill()
				cmd.Wait()
			}
		})
		return cmd
	}

	startServer("first")
	// Wait for the connection file to appear.
	deadline := time.Now().Add(20 * time.Second)
	var target string
	for time.Now().Before(deadline) {
		if data, err := os.ReadFile(connFile); err == nil && len(data) > 0 {
			target = strings.TrimSpace(string(data))
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if target == "" {
		t.Fatal("connection file never appeared")
	}
	startServer("second")

	ctl := func(args ...string) string {
		out, err := exec.Command(ctlBin, append([]string{"-connfile", connFile}, args...)...).CombinedOutput()
		if err != nil {
			t.Fatalf("colza-ctl %v: %v\n%s", args, err, out)
		}
		return string(out)
	}

	// Wait until both servers appear in the membership.
	deadline = time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if strings.Count(ctl("members"), "rank ") == 2 {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	members := ctl("members")
	if strings.Count(members, "rank ") != 2 {
		t.Fatalf("membership never reached 2:\n%s", members)
	}

	// Create the pipeline everywhere through the admin tool.
	ctl("create-all", "viz", catalyst.IsoPipelineType,
		`{"field":"value","isovalues":[8],"scalar_range":[0,32],"width":48,"height":48}`)
	if !strings.Contains(ctl("list"), "viz") {
		t.Fatal("pipeline not listed after create-all")
	}

	// One in situ iteration from an in-test client over TCP.
	ep, err := na.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	mi := margo.NewInstance(ep)
	defer mi.Finalize()
	client := core.NewClient(mi)
	h := client.Handle("viz", target)
	h.SetTimeout(30 * time.Second)
	if err := h.SetCodec("shuffle"); err != nil {
		t.Fatal(err)
	}
	mb := sim.DefaultMandelbulb([3]int{12, 12, 8}, 4)
	if _, err := h.Activate(1); err != nil {
		t.Fatal(err)
	}
	for b := 0; b < mb.Blocks; b++ {
		blk := sim.MandelbulbBlock(mb, b, 1)
		if err := h.Stage(1, sim.MandelbulbMeta(mb, b), blk.Encode()); err != nil {
			t.Fatal(err)
		}
	}
	results, err := h.Execute(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("%d results", len(results))
	}
	if err := h.Deactivate(1); err != nil {
		t.Fatal(err)
	}

	// The iteration must be visible through the observability surface:
	// `colza-ctl metrics` prints non-zero RPC counters and stage-latency
	// percentiles from the server's registry.
	metrics := ctl("metrics")
	assertMetricLine(t, metrics, "counter mercury.serve.count{rpc=colza::stage}")
	assertMetricLine(t, metrics, "counter colza.staged.blocks{pipeline=viz}")
	assertMetricLine(t, metrics, "counter colza.commit.count{pipeline=viz}")
	if !strings.Contains(metrics, "hist span.srv.stage{pipeline=viz}") ||
		!strings.Contains(metrics, "p99=") {
		t.Fatalf("metrics lack stage span percentiles:\n%s", metrics)
	}
	if !strings.Contains(metrics, "hist span.srv.execute{pipeline=viz}") {
		t.Fatalf("metrics lack execute span histogram:\n%s", metrics)
	}
	// The failure counters of the state-durability layer must be exported
	// even when zero (they are pre-touched at registration): a clean dump
	// proves the absence of silent migrate/checkpoint/respond failures
	// rather than the absence of instrumentation.
	assertMetricPresent(t, metrics, "counter core.migrate.errors")
	assertMetricPresent(t, metrics, "counter core.state.checkpoint.errors")
	assertMetricPresent(t, metrics, "counter mercury.respond.send_errors")
	// The compressed stage path must be visible in the live registry: the
	// client staged through the shuffle codec, so the server counted both
	// wire bytes in and decoded bytes out for it. The raw counters are
	// pre-touched at SetObserver time and exported at zero.
	assertMetricLine(t, metrics, "counter codec.bytes.in{codec=shuffle}")
	assertMetricLine(t, metrics, "counter codec.bytes.out{codec=shuffle}")
	assertMetricPresent(t, metrics, "counter codec.bytes.in{codec=raw}")

	// `colza-ctl trace` emits the span records as JSON lines.
	var spanNames []string
	for _, line := range strings.Split(strings.TrimSpace(ctl("trace")), "\n") {
		var rec struct {
			Name      string `json:"name"`
			Iteration uint64 `json:"iteration"`
			DurNS     int64  `json:"dur_ns"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("trace line %q: %v", line, err)
		}
		if rec.Iteration != 1 {
			t.Fatalf("trace span %q on iteration %d, want 1", rec.Name, rec.Iteration)
		}
		spanNames = append(spanNames, rec.Name)
	}
	for _, want := range []string{"srv.stage", "srv.execute", "srv.deactivate"} {
		found := false
		for _, n := range spanNames {
			found = found || n == want
		}
		if !found {
			t.Fatalf("trace has no %q span (got %v)", want, spanNames)
		}
	}

	// Scale down through the admin tool: one server leaves gracefully.
	view, err := client.FetchView(target, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var leaver string
	for _, m := range view.Members {
		if m.RPC != target {
			leaver = m.RPC
		}
	}
	out, err := exec.Command(ctlBin, "-server", leaver, "leave").CombinedOutput()
	if err != nil {
		t.Fatalf("leave: %v\n%s", err, out)
	}
	deadline = time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if strings.Count(ctl("members"), "rank ") == 1 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("server never left:\n%s", ctl("members"))
}

// assertMetricLine asserts the text dump contains the given counter line
// with a strictly positive value.
func assertMetricLine(t *testing.T, metrics, prefix string) {
	t.Helper()
	for _, line := range strings.Split(metrics, "\n") {
		if !strings.HasPrefix(line, prefix+" ") {
			continue
		}
		fields := strings.Fields(line)
		if v, err := strconv.ParseInt(fields[len(fields)-1], 10, 64); err == nil && v > 0 {
			return
		}
		t.Fatalf("metric %q present but not positive: %q", prefix, line)
	}
	t.Fatalf("metrics lack %q:\n%s", prefix, metrics)
}

// assertMetricPresent asserts the text dump exports the metric line at
// all, whatever its value — for error counters whose healthy value is 0.
func assertMetricPresent(t *testing.T, metrics, prefix string) {
	t.Helper()
	for _, line := range strings.Split(metrics, "\n") {
		if strings.HasPrefix(line, prefix+" ") {
			return
		}
	}
	t.Fatalf("metrics lack %q:\n%s", prefix, metrics)
}

// TestElasticCommandLine runs a real colza-server with -elastic and reads
// the controller back through `colza-ctl elastic status` and the metrics
// dump: the live elastic.* counters must be exported (pre-touched at
// zero), the single daemon must report itself the leader, and a plain
// server joining the same group must answer elastic status with the
// no-controller error.
func TestElasticCommandLine(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs subprocesses")
	}
	serverBin, ctlBin := buildBinaries(t)
	dir := t.TempDir()
	connFile := filepath.Join(dir, "colza.addr")

	startServer := func(name string, extra ...string) {
		args := append([]string{
			"-listen", "127.0.0.1:0", "-listen-mona", "127.0.0.1:0",
			"-connfile", connFile, "-gossip-ms", "20", "-sm-dir", dir}, extra...)
		cmd := exec.Command(serverBin, args...)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting %s: %v", name, err)
		}
		t.Cleanup(func() {
			if cmd.Process != nil {
				cmd.Process.Kill()
				cmd.Wait()
			}
		})
	}

	// A high ceiling would let the controller launch daemons on its own
	// (the sensed group is idle, so it never will); floor 1 and an idle
	// load keep the deployment static while we read the control plane.
	startServer("elastic-leader", "-elastic", "-elastic-target", "50ms",
		"-elastic-poll", "25ms", "-elastic-cooldown", "200ms", "-elastic-ceiling", "2")
	deadline := time.Now().Add(20 * time.Second)
	var target string
	for time.Now().Before(deadline) {
		if data, err := os.ReadFile(connFile); err == nil && len(data) > 0 {
			target = strings.TrimSpace(string(data))
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if target == "" {
		t.Fatal("connection file never appeared")
	}

	ctl := func(args ...string) string {
		out, err := exec.Command(ctlBin, append([]string{"-connfile", connFile}, args...)...).CombinedOutput()
		if err != nil {
			t.Fatalf("colza-ctl %v: %v\n%s", args, err, out)
		}
		return string(out)
	}

	// The controller ticks every 25ms; once the leader gauge is up the
	// status document is fully populated.
	var status string
	deadline = time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		status = ctl("elastic", "status")
		if strings.Contains(status, "gauge elastic.leader 1") {
			break
		}
		time.Sleep(25 * time.Millisecond)
	}
	for _, want := range []string{
		"self    " + target,
		"leader  true  running true",
		"floor 1  ceiling 2  target 50.0ms",
		"counter elastic.scaleups 0",
		"counter elastic.scaledowns 0",
		"counter elastic.launch_attempts 0",
		"counter elastic.launch_errors 0",
		"counter elastic.takeovers 0",
		"gauge elastic.leader 1",
		"gauge elastic.servers 1",
	} {
		if !strings.Contains(status, want) {
			t.Fatalf("elastic status lacks %q:\n%s", want, status)
		}
	}

	// The controller's instruments live in the same registry the metrics
	// dump exports: every elastic.* counter is visible at zero.
	metrics := ctl("metrics")
	for _, name := range []string{
		"counter elastic.scaleups", "counter elastic.scaledowns",
		"counter elastic.launch_attempts", "counter elastic.launch_errors",
		"counter elastic.holds", "counter elastic.takeovers",
	} {
		assertMetricPresent(t, metrics, name)
	}

	// A plain daemon in the same group has no controller: elastic status
	// against it must fail with the dedicated error.
	startServer("plain-follower")
	deadline = time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if strings.Count(ctl("members"), "rank ") == 2 {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	members := ctl("members")
	if strings.Count(members, "rank ") != 2 {
		t.Fatalf("membership never reached 2:\n%s", members)
	}
	var follower string
	for _, line := range strings.Split(members, "\n") {
		if strings.HasPrefix(line, "rank ") && !strings.Contains(line, "rpc="+target+" ") {
			follower = strings.TrimPrefix(strings.Fields(line)[2], "rpc=")
		}
	}
	if follower == "" {
		t.Fatalf("no follower in members:\n%s", members)
	}
	out, err := exec.Command(ctlBin, "-server", follower, "elastic", "status").CombinedOutput()
	if err == nil {
		t.Fatalf("elastic status against a plain server succeeded:\n%s", out)
	}
	if !strings.Contains(string(out), "no elastic controller") {
		t.Fatalf("unexpected error output: %s", out)
	}
}

// The controller's ProcessLauncher re-execs colza-server with the parent's
// flags cloned; the launched daemon must itself carry a controller so
// leadership can hand off to it. Regression: boolean flags passed as two
// argv tokens ("-elastic", then a bare value) made the flag package stop
// parsing and silently drop -elastic from relaunched daemons.
func TestElasticProcessRelaunchCarriesController(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs subprocesses")
	}
	serverBin, ctlBin := buildBinaries(t)
	dir := t.TempDir()
	connFile := filepath.Join(dir, "colza.addr")

	// Target 2ms: any real iso execute overshoots it, so the first sensed
	// batch triggers a launch. The 30s cooldown keeps it to one.
	cmd := exec.Command(serverBin,
		"-listen", "127.0.0.1:0", "-listen-mona", "127.0.0.1:0",
		"-connfile", connFile, "-gossip-ms", "20", "-sm-dir", dir,
		"-elastic", "-elastic-target", "2ms", "-elastic-poll", "50ms",
		"-elastic-cooldown", "30s", "-elastic-ceiling", "2")
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	deadline := time.Now().Add(20 * time.Second)
	var target string
	for time.Now().Before(deadline) {
		if data, err := os.ReadFile(connFile); err == nil && len(data) > 0 {
			target = strings.TrimSpace(string(data))
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if target == "" {
		t.Fatal("connection file never appeared")
	}
	ctl := func(args ...string) string {
		out, err := exec.Command(ctlBin, append([]string{"-connfile", connFile}, args...)...).CombinedOutput()
		if err != nil {
			t.Fatalf("colza-ctl %v: %v\n%s", args, err, out)
		}
		return string(out)
	}
	ctl("create-all", "viz", catalyst.IsoPipelineType,
		`{"field":"value","isovalues":[8],"scalar_range":[0,32],"width":48,"height":48}`)

	// Drive iterations until the controller's sensed batch launches a
	// second daemon (the launched process joins via the conn file).
	ep, err := na.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	mi := margo.NewInstance(ep)
	defer mi.Finalize()
	client := core.NewClient(mi)
	h := client.Handle("viz", target)
	h.SetTimeout(30 * time.Second)
	mb := sim.DefaultMandelbulb([3]int{16, 16, 12}, 4)
	grown := false
	for it := uint64(1); it <= 40 && !grown; it++ {
		if _, err := h.Activate(it); err != nil {
			t.Fatalf("iter %d activate: %v", it, err)
		}
		for b := 0; b < mb.Blocks; b++ {
			blk := sim.MandelbulbBlock(mb, b, it)
			if err := h.Stage(it, sim.MandelbulbMeta(mb, b), blk.Encode()); err != nil {
				t.Fatalf("iter %d stage: %v", it, err)
			}
		}
		if _, err := h.Execute(it); err != nil {
			t.Fatalf("iter %d execute: %v", it, err)
		}
		if err := h.Deactivate(it); err != nil {
			t.Fatalf("iter %d deactivate: %v", it, err)
		}
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) {
			if strings.Count(ctl("members"), "rank ") == 2 {
				grown = true
				break
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	if !grown {
		t.Fatalf("controller never launched a second daemon:\n%s", ctl("elastic", "status"))
	}

	// The launched daemon inherits this test's stderr pipe; ask it to
	// leave and wait for it to exit, or go test stalls on open I/O.
	var newcomer string
	for _, line := range strings.Split(ctl("members"), "\n") {
		if strings.HasPrefix(line, "rank ") && !strings.Contains(line, "rpc="+target+" ") {
			newcomer = strings.TrimPrefix(strings.Fields(line)[2], "rpc=")
		}
	}
	if newcomer == "" {
		t.Fatal("no newcomer in members output")
	}
	t.Cleanup(func() {
		exec.Command(ctlBin, "-server", newcomer, "leave").Run()
		deadline := time.Now().Add(20 * time.Second)
		for time.Now().Before(deadline) {
			if exec.Command(ctlBin, "-server", newcomer, "elastic", "status").Run() != nil {
				return
			}
			time.Sleep(50 * time.Millisecond)
		}
	})

	// The original daemon actuated exactly one launch. The membership can
	// grow before its Tick finishes provisioning the newcomer, so give the
	// counter a moment to land.
	var status []byte
	deadline = time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		status, err = exec.Command(ctlBin, "-server", target, "elastic", "status").CombinedOutput()
		if err == nil && strings.Contains(string(status), "counter elastic.scaleups 1") {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	for _, want := range []string{"counter elastic.scaleups 1", "counter elastic.launch_errors 0"} {
		if !strings.Contains(string(status), want) {
			t.Fatalf("original status lacks %q:\n%s", want, status)
		}
	}

	// ...and the daemon it exec'd runs its own controller (the handoff
	// candidate).
	status, err = exec.Command(ctlBin, "-server", newcomer, "elastic", "status").CombinedOutput()
	if err != nil {
		t.Fatalf("relaunched daemon has no controller: %v\n%s", err, status)
	}
	if !strings.Contains(string(status), "running true") {
		t.Fatalf("relaunched daemon's controller not running:\n%s", status)
	}
}

// jsonValid double-checks the pipeline config snippets used in docs parse.
func TestDocumentedConfigsParse(t *testing.T) {
	var iso catalyst.IsoConfig
	if err := json.Unmarshal([]byte(`{"field":"value","isovalues":[8],"scalar_range":[0,32]}`), &iso); err != nil {
		t.Fatal(err)
	}
	if iso.Field != "value" || iso.IsoValues[0] != 8 {
		t.Fatalf("parsed %+v", iso)
	}
}
