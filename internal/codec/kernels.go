package codec

import "encoding/binary"

// Word-wise inner-loop kernels for the shuffle and XOR-delta transforms.
// The transforms move every byte of every staged block, so the byte-at-a-
// time reference loops were the codec hot spot; these operate on 8-byte
// words (§10 pattern: aligned prefix word-wise, sub-word tail byte-wise)
// and are proven bit-identical to the references by TestKernelsMatchReference.

// xorInto XORs src into dst elementwise (the delta residual). Word-wise:
// one load/xor/store per 8 bytes instead of eight.
func xorInto(dst, src []byte) {
	n := len(dst)
	i := 0
	for ; i+8 <= n; i += 8 {
		binary.LittleEndian.PutUint64(dst[i:],
			binary.LittleEndian.Uint64(dst[i:])^binary.LittleEndian.Uint64(src[i:]))
	}
	for ; i < n; i++ {
		dst[i] ^= src[i]
	}
}

// shuffleBytes transposes the aligned prefix of src so byte j of every
// stride-sized element is contiguous — dst[j*rows+i] = src[i*stride+j] —
// and carries any sub-stride tail verbatim at the end. Strides 4 and 8
// (the ones Encode emits) run word-wise; other strides take the
// reference loop.
func shuffleBytes(dst, src []byte, stride int) {
	rows := len(src) / stride
	switch stride {
	case 8:
		shuffle8(dst, src, rows)
	case 4:
		shuffle4(dst, src, rows)
	default:
		shuffleRef(dst, src, stride)
		return
	}
	copy(dst[rows*stride:], src[rows*stride:])
}

// unshuffleBytes inverts shuffleBytes.
func unshuffleBytes(dst, src []byte, stride int) {
	rows := len(src) / stride
	switch stride {
	case 8:
		unshuffle8(dst, src, rows)
	case 4:
		unshuffle4(dst, src, rows)
	default:
		unshuffleRef(dst, src, stride)
		return
	}
	copy(dst[rows*stride:], src[rows*stride:])
}

// shuffleRef / unshuffleRef are the byte-wise reference transposes: the
// oracle the word kernels are tested against, and the fallback for
// strides without a dedicated kernel.
func shuffleRef(dst, src []byte, stride int) {
	rows := len(src) / stride
	for j := 0; j < stride; j++ {
		o := j * rows
		for i := 0; i < rows; i++ {
			dst[o+i] = src[i*stride+j]
		}
	}
	copy(dst[rows*stride:], src[rows*stride:])
}

func unshuffleRef(dst, src []byte, stride int) {
	rows := len(src) / stride
	for j := 0; j < stride; j++ {
		o := j * rows
		for i := 0; i < rows; i++ {
			dst[i*stride+j] = src[o+i]
		}
	}
	copy(dst[rows*stride:], src[rows*stride:])
}

// xorIntoRef is the byte-wise XOR reference (test oracle).
func xorIntoRef(dst, src []byte) {
	for i := range dst {
		dst[i] ^= src[i]
	}
}

// transpose8x8 transposes an 8×8 byte matrix held in eight little-endian
// words (w[r] byte c = element (r,c)) in place, using three rounds of
// masked block swaps — 24 word ops instead of 64 byte moves.
func transpose8x8(w *[8]uint64) {
	const (
		m1 = 0xFF00FF00FF00FF00
		m2 = 0xFFFF0000FFFF0000
		m4 = 0xFFFFFFFF00000000
	)
	for r := 0; r < 8; r += 2 {
		t := (w[r] ^ (w[r+1] << 8)) & m1
		w[r] ^= t
		w[r+1] ^= t >> 8
	}
	for _, r := range [4]int{0, 1, 4, 5} {
		t := (w[r] ^ (w[r+2] << 16)) & m2
		w[r] ^= t
		w[r+2] ^= t >> 16
	}
	for r := 0; r < 4; r++ {
		t := (w[r] ^ (w[r+4] << 32)) & m4
		w[r] ^= t
		w[r+4] ^= t >> 32
	}
}

// shuffle8 transposes rows float64-sized elements: tiles of 8 elements
// (one 8×8 byte matrix, loaded as 8 words) transpose in registers, each
// output word landing as 8 contiguous bytes of one plane.
func shuffle8(dst, src []byte, rows int) {
	nt := rows &^ 7
	var w [8]uint64
	for base := 0; base < nt; base += 8 {
		off := base * 8
		for i := 0; i < 8; i++ {
			w[i] = binary.LittleEndian.Uint64(src[off+i*8:])
		}
		transpose8x8(&w)
		for j := 0; j < 8; j++ {
			binary.LittleEndian.PutUint64(dst[j*rows+base:], w[j])
		}
	}
	for i := nt; i < rows; i++ {
		for j := 0; j < 8; j++ {
			dst[j*rows+i] = src[i*8+j]
		}
	}
}

func unshuffle8(dst, src []byte, rows int) {
	nt := rows &^ 7
	var w [8]uint64
	for base := 0; base < nt; base += 8 {
		for j := 0; j < 8; j++ {
			w[j] = binary.LittleEndian.Uint64(src[j*rows+base:])
		}
		transpose8x8(&w)
		off := base * 8
		for i := 0; i < 8; i++ {
			binary.LittleEndian.PutUint64(dst[off+i*8:], w[i])
		}
	}
	for i := nt; i < rows; i++ {
		for j := 0; j < 8; j++ {
			dst[i*8+j] = src[j*rows+i]
		}
	}
}

// shuffle4 transposes rows float32-sized elements: per plane, eight
// elements' bytes gather into one word store (8 loads + 1 store instead
// of 8 load/store pairs, and the writes stream sequentially).
func shuffle4(dst, src []byte, rows int) {
	nt := rows &^ 7
	for j := 0; j < 4; j++ {
		o := j * rows
		for i := 0; i < nt; i += 8 {
			s := src[i*4+j:]
			_ = s[28] // one bounds check for the eight gathered loads
			w := uint64(s[0]) | uint64(s[4])<<8 | uint64(s[8])<<16 | uint64(s[12])<<24 |
				uint64(s[16])<<32 | uint64(s[20])<<40 | uint64(s[24])<<48 | uint64(s[28])<<56
			binary.LittleEndian.PutUint64(dst[o+i:], w)
		}
		for i := nt; i < rows; i++ {
			dst[o+i] = src[i*4+j]
		}
	}
}

func unshuffle4(dst, src []byte, rows int) {
	nt := rows &^ 7
	for j := 0; j < 4; j++ {
		o := j * rows
		for i := 0; i < nt; i += 8 {
			w := binary.LittleEndian.Uint64(src[o+i:])
			d := dst[i*4+j:]
			_ = d[28] // one bounds check for the eight scattered stores
			d[0] = byte(w)
			d[4] = byte(w >> 8)
			d[8] = byte(w >> 16)
			d[12] = byte(w >> 24)
			d[16] = byte(w >> 32)
			d[20] = byte(w >> 40)
			d[24] = byte(w >> 48)
			d[28] = byte(w >> 56)
		}
		for i := nt; i < rows; i++ {
			dst[i*4+j] = src[o+i]
		}
	}
}
