package codec

import (
	"compress/flate"
	"io"
	"sync"
)

// Flate wraps stdlib DEFLATE at BestSpeed. It is the general-purpose entry
// in the registry: slower than Shuffle on float grids but stronger on mixed
// or byte-oriented payloads. Writers and readers are pooled and Reset so
// steady-state encoding touches no allocator beyond the pools.
type Flate struct {
	writers sync.Pool // *flate.Writer
	readers sync.Pool // io.ReadCloser with flate.Resetter
}

func (*Flate) ID() uint8    { return FlateID }
func (*Flate) Name() string { return "flate" }

// MaxEncodedSize: DEFLATE stored-block overhead is 5 bytes per 65535-byte
// block, plus stream header/trailer slack.
func (*Flate) MaxEncodedSize(n int) int { return n + 5*(n/65535+1) + 16 }

// sliceWriter appends everything written to it onto buf.
type sliceWriter struct{ buf []byte }

func (w *sliceWriter) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	return len(p), nil
}

func (f *Flate) Encode(dst, src []byte) ([]byte, error) {
	sw := &sliceWriter{buf: dst}
	var zw *flate.Writer
	if v := f.writers.Get(); v != nil {
		zw = v.(*flate.Writer)
		zw.Reset(sw)
	} else {
		zw, _ = flate.NewWriter(sw, flate.BestSpeed)
	}
	if _, err := zw.Write(src); err != nil {
		return nil, err
	}
	if err := zw.Close(); err != nil {
		return nil, err
	}
	f.writers.Put(zw)
	return sw.buf, nil
}

// byteReader serves src without the allocation of bytes.NewReader and
// implements io.ByteReader so flate skips its internal bufio wrapper.
type byteReader struct {
	src []byte
	off int
}

func (r *byteReader) Read(p []byte) (int, error) {
	if r.off >= len(r.src) {
		return 0, io.EOF
	}
	n := copy(p, r.src[r.off:])
	r.off += n
	return n, nil
}

func (r *byteReader) ReadByte() (byte, error) {
	if r.off >= len(r.src) {
		return 0, io.EOF
	}
	b := r.src[r.off]
	r.off++
	return b, nil
}

func (f *Flate) Decode(dst, src []byte, srcLen int) ([]byte, error) {
	br := &byteReader{src: src}
	var zr io.ReadCloser
	if v := f.readers.Get(); v != nil {
		zr = v.(io.ReadCloser)
		zr.(flate.Resetter).Reset(br, nil)
	} else {
		zr = flate.NewReader(br)
	}
	// Read exactly srcLen bytes into the grown tail of dst, then require a
	// clean EOF — extra or missing data is corruption, not silence.
	base := len(dst)
	for cap(dst)-len(dst) < srcLen {
		dst = append(dst[:cap(dst)], 0)
	}
	dst = dst[:base+srcLen]
	if _, err := io.ReadFull(zr, dst[base:]); err != nil {
		return nil, ErrCorrupt
	}
	var one [1]byte
	if n, err := zr.Read(one[:]); n != 0 || err != io.EOF {
		return nil, ErrCorrupt
	}
	if err := zr.Close(); err != nil {
		return nil, ErrCorrupt
	}
	// The DEFLATE reader consumes exactly the stream (it pulls byte-at-a-time
	// through the ByteReader), so unread source bytes are trailing garbage.
	if br.off != len(src) {
		return nil, ErrCorrupt
	}
	f.readers.Put(zr)
	return dst, nil
}
