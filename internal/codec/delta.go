package codec

import (
	"sync"

	"colza/internal/bufpool"
)

// Delta is the temporal codec: the caller XORs the block against the
// previous iteration's copy (held in a DeltaState) and Delta encodes the
// residual with the same shuffle transform as Shuffle. Frame-to-frame
// coherence makes the XOR mostly zeros, which the shuffle's run-length or
// entropy coding collapses far below what any single-frame codec reaches. With no history the XOR base is absent
// and Delta degenerates to Shuffle — a "zero-base" delta, bit-compatible on
// the wire, which is what makes fallback after invalidation safe.
//
// The codec itself stays stateless: base management, bounding, and
// invalidation all live in DeltaState so that a Codec in flight can never
// observe cross-iteration state mutating under it.
type Delta struct{}

func (Delta) ID() uint8                { return DeltaID }
func (Delta) Name() string             { return "delta" }
func (Delta) MaxEncodedSize(n int) int { return Shuffle{}.MaxEncodedSize(n) }

func (Delta) Encode(dst, src []byte) ([]byte, error) { return Shuffle{}.Encode(dst, src) }

func (Delta) Decode(dst, src []byte, srcLen int) ([]byte, error) {
	return Shuffle{}.Decode(dst, src, srcLen)
}

// DeltaKey identifies one block's delta history: the previous iteration of
// field Field, block Block, in pipeline Pipeline.
type DeltaKey struct {
	Pipeline string
	Field    string
	Block    int
}

// DeltaState holds the per-block base copies that delta encoding XORs
// against, on either side of the wire. Memory is bounded: when the total
// stored bytes would exceed the limit, the least recently touched entries
// are evicted (an evicted base just forces the next delta for that block to
// fall back to zero-base — correctness never depends on retention).
//
// All access is under one mutex, and the XOR/copy helpers do their work
// inside the lock so no internal slice ever escapes. That is what lets
// Remember reuse same-length storage in place without racing a reader.
type DeltaState struct {
	mu      sync.Mutex
	limit   int
	bytes   int
	seq     uint64
	entries map[DeltaKey]*deltaEntry
}

type deltaEntry struct {
	iter uint64
	data []byte // bufpool-owned
	used uint64 // LRU stamp
}

// DefaultDeltaStateBytes bounds a DeltaState that was not given an explicit
// limit: enough for a few hundred 256KiB blocks per process.
const DefaultDeltaStateBytes = 256 << 20

// NewDeltaState returns a DeltaState bounded to limitBytes of stored base
// data (DefaultDeltaStateBytes if limitBytes <= 0).
func NewDeltaState(limitBytes int) *DeltaState {
	if limitBytes <= 0 {
		limitBytes = DefaultDeltaStateBytes
	}
	return &DeltaState{limit: limitBytes, entries: map[DeltaKey]*deltaEntry{}}
}

// XORBase XORs buf in place against the stored base for k if — and only
// if — the stored base is from iteration base and the same length as buf.
// It reports whether the XOR was applied. A false return means the caller
// must use a zero base (encode side) or reject the frame (decode side).
func (s *DeltaState) XORBase(k DeltaKey, base uint64, buf []byte) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[k]
	if !ok || e.iter != base || len(e.data) != len(buf) {
		return false
	}
	s.seq++
	e.used = s.seq
	xorInto(buf, e.data)
	return true
}

// Latest reports the iteration and length of the stored base for k.
func (s *DeltaState) Latest(k DeltaKey) (iter uint64, n int, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[k]
	if !ok {
		return 0, 0, false
	}
	return e.iter, len(e.data), true
}

// Remember stores a copy of buf as the iteration-it base for k, reusing the
// existing storage when the length matches and evicting least recently used
// entries if the bound would be exceeded. A buf larger than the whole limit
// is simply not remembered.
func (s *DeltaState) Remember(k DeltaKey, it uint64, buf []byte) {
	if len(buf) > s.limit {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	if e, ok := s.entries[k]; ok {
		if len(e.data) == len(buf) {
			copy(e.data, buf)
			e.iter = it
			e.used = s.seq
			return
		}
		s.bytes -= len(e.data)
		bufpool.Put(e.data)
		delete(s.entries, k)
	}
	for s.bytes+len(buf) > s.limit {
		s.evictOldestLocked()
	}
	data := bufpool.Get(len(buf))
	copy(data, buf)
	s.entries[k] = &deltaEntry{iter: it, data: data, used: s.seq}
	s.bytes += len(buf)
}

func (s *DeltaState) evictOldestLocked() {
	var victim DeltaKey
	var oldest uint64
	found := false
	for k, e := range s.entries {
		if !found || e.used < oldest {
			victim, oldest, found = k, e.used, true
		}
	}
	if !found {
		return
	}
	e := s.entries[victim]
	s.bytes -= len(e.data)
	bufpool.Put(e.data)
	delete(s.entries, victim)
}

// InvalidatePipeline drops every base belonging to pipeline p. Called when
// the pipeline's membership changes or its state is recovered/imported —
// any event after which the peer's history can no longer be assumed.
func (s *DeltaState) InvalidatePipeline(p string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, e := range s.entries {
		if k.Pipeline == p {
			s.bytes -= len(e.data)
			bufpool.Put(e.data)
			delete(s.entries, k)
		}
	}
}

// Reset drops all stored bases.
func (s *DeltaState) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, e := range s.entries {
		s.bytes -= len(e.data)
		bufpool.Put(e.data)
		delete(s.entries, k)
	}
}

// Bytes reports the bytes of base data currently held.
func (s *DeltaState) Bytes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// xorInto lives in kernels.go: a word-wise XOR with byte-wise tail.
