package codec

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestKernelsMatchReference is the property test behind the word-wise
// kernels: over randomized sizes (including every sub-stride and sub-tile
// tail shape) and all supported strides, the word-wise shuffle,
// unshuffle, and XOR produce bit-identical output to the byte-wise
// references, and unshuffle inverts shuffle.
func TestKernelsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	sizes := []int{0, 1, 2, 3, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 65, 255, 256, 257, 4096, 4097}
	for i := 0; i < 40; i++ {
		sizes = append(sizes, rng.Intn(1<<16))
	}
	for _, n := range sizes {
		src := make([]byte, n)
		rng.Read(src)
		for _, stride := range []int{1, 2, 4, 8} {
			got := make([]byte, n)
			want := make([]byte, n)
			shuffleBytes(got, src, stride)
			shuffleRef(want, src, stride)
			if !bytes.Equal(got, want) {
				t.Fatalf("shuffle n=%d stride=%d differs from reference", n, stride)
			}
			back := make([]byte, n)
			unshuffleBytes(back, got, stride)
			if !bytes.Equal(back, src) {
				t.Fatalf("unshuffle(shuffle) n=%d stride=%d not identity", n, stride)
			}
			backRef := make([]byte, n)
			unshuffleRef(backRef, got, stride)
			if !bytes.Equal(backRef, src) {
				t.Fatalf("unshuffle reference n=%d stride=%d not identity", n, stride)
			}
		}
		other := make([]byte, n)
		rng.Read(other)
		a := append([]byte(nil), src...)
		b := append([]byte(nil), src...)
		xorInto(a, other)
		xorIntoRef(b, other)
		if !bytes.Equal(a, b) {
			t.Fatalf("xorInto n=%d differs from reference", n)
		}
		xorInto(a, other)
		if !bytes.Equal(a, src) {
			t.Fatalf("xorInto n=%d not an involution", n)
		}
	}
}

func TestTranspose8x8(t *testing.T) {
	var src [64]byte
	for i := range src {
		src[i] = byte(i)
	}
	var w [8]uint64
	for r := 0; r < 8; r++ {
		for c := 0; c < 8; c++ {
			w[r] |= uint64(src[r*8+c]) << (8 * c)
		}
	}
	transpose8x8(&w)
	for r := 0; r < 8; r++ {
		for c := 0; c < 8; c++ {
			got := byte(w[r] >> (8 * c))
			if got != src[c*8+r] {
				t.Fatalf("transpose (%d,%d): got %d want %d", r, c, got, src[c*8+r])
			}
		}
	}
}

// Kernel benchmarks: the word-wise implementations next to their
// byte-wise references, so bench-smoke records the before/after ratio.

const kernelBenchN = 256 << 10

func benchShuffle(b *testing.B, stride int, fn func(dst, src []byte, stride int)) {
	src := make([]byte, kernelBenchN)
	rand.New(rand.NewSource(1)).Read(src)
	dst := make([]byte, kernelBenchN)
	b.SetBytes(kernelBenchN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fn(dst, src, stride)
	}
}

func BenchmarkShuffleKernelWord8(b *testing.B) { benchShuffle(b, 8, shuffleBytes) }
func BenchmarkShuffleKernelRef8(b *testing.B)  { benchShuffle(b, 8, shuffleRef) }
func BenchmarkShuffleKernelWord4(b *testing.B) { benchShuffle(b, 4, shuffleBytes) }
func BenchmarkShuffleKernelRef4(b *testing.B)  { benchShuffle(b, 4, shuffleRef) }

func BenchmarkUnshuffleKernelWord8(b *testing.B) {
	benchShuffle(b, 8, unshuffleBytes)
}
func BenchmarkUnshuffleKernelRef8(b *testing.B) { benchShuffle(b, 8, unshuffleRef) }

func benchXor(b *testing.B, fn func(dst, src []byte)) {
	src := make([]byte, kernelBenchN)
	dst := make([]byte, kernelBenchN)
	rand.New(rand.NewSource(2)).Read(src)
	b.SetBytes(kernelBenchN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fn(dst, src)
	}
}

func BenchmarkXorKernelWord(b *testing.B) { benchXor(b, xorInto) }
func BenchmarkXorKernelRef(b *testing.B)  { benchXor(b, xorIntoRef) }
