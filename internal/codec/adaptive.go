package codec

import "sync"

// Selector is the per-pipeline adaptive controller. It watches each staged
// block — uncompressed size, wire size, encode CPU, and the observed stage
// RPC time — and picks whichever candidate codec minimizes the estimated
// cost of moving one MB:
//
//	cost(c) = encodeNsPerMB(c) + ratio(c) * linkNsPerMB
//
// where ratio is the codec's observed wire/uncompressed ratio and
// linkNsPerMB is an EWMA of wire throughput measured from stage RPC
// durations. On a link faster than the codec the ratio term cannot buy back
// the encode term and raw (encode cost ~0, ratio 1) wins naturally; on a
// slow link any codec with ratio < 1 pulls ahead. Until a candidate has
// samples the selector probes it (and re-probes every probeEvery ops) so
// estimates track the data as the simulation evolves.
type Selector struct {
	mu          sync.Mutex
	candidates  []Codec
	ops         uint64
	linkNsPerMB float64 // EWMA, 0 until first measurement
	stats       map[uint8]*codecStat
}

type codecStat struct {
	ratio      float64 // EWMA wire/uncompressed
	encNsPerMB float64 // EWMA
	samples    int
}

const (
	probeEvery    = 16       // re-probe cadence per candidate
	ewmaAlpha     = 0.3      // weight of the newest sample
	linkMinSample = 64 << 10 // ignore link timing from tiny payloads
)

// NewSelector returns a Selector choosing among codecs. Raw is always an
// implicit candidate: it is the fallback cost baseline.
func NewSelector(codecs []Codec) *Selector {
	s := &Selector{stats: map[uint8]*codecStat{}}
	s.SetCandidates(codecs)
	return s
}

// SetCandidates replaces the candidate set (e.g. after per-link negotiation
// at activate). Accumulated statistics for retained codecs are kept.
func (s *Selector) SetCandidates(codecs []Codec) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.candidates = s.candidates[:0]
	hasRaw := false
	for _, c := range codecs {
		if c.ID() == RawID {
			hasRaw = true
		}
		s.candidates = append(s.candidates, c)
	}
	if !hasRaw {
		s.candidates = append(s.candidates, Raw{})
	}
}

// Pick returns the codec to use for the next block. Unsampled candidates
// are probed first; otherwise every probeEvery-th op round-robins through
// the candidates to keep estimates fresh, and the rest pick the argmin of
// the cost model.
func (s *Selector) Pick() Codec {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ops++
	for _, c := range s.candidates {
		st := s.stats[c.ID()]
		if st == nil || st.samples == 0 {
			return c
		}
	}
	if len(s.candidates) > 1 && s.ops%probeEvery == 0 {
		return s.candidates[int(s.ops/probeEvery)%len(s.candidates)]
	}
	best := s.candidates[0]
	bestCost := s.costLocked(best)
	for _, c := range s.candidates[1:] {
		if cost := s.costLocked(c); cost < bestCost {
			best, bestCost = c, cost
		}
	}
	return best
}

func (s *Selector) costLocked(c Codec) float64 {
	st := s.stats[c.ID()]
	if st == nil || st.samples == 0 {
		return 0 // unsampled: maximally attractive, forces a probe
	}
	link := s.linkNsPerMB
	if link == 0 {
		// No link estimate yet: assume a fast link so compression has to
		// prove itself before it is allowed to burn CPU.
		link = 1e6 // 1 ms/MB ≈ 1 GB/s
	}
	return st.encNsPerMB + st.ratio*link
}

// Record feeds back one staged block: c compressed uncompressed bytes down
// to wire bytes in encNs of CPU, and the stage RPC (dominated by the bulk
// pull of wire bytes) took rpcNs.
func (s *Selector) Record(c Codec, uncompressed, wire int, encNs, rpcNs int64) {
	if uncompressed <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats[c.ID()]
	if st == nil {
		st = &codecStat{}
		s.stats[c.ID()] = st
	}
	mb := float64(uncompressed) / (1 << 20)
	ratio := float64(wire) / float64(uncompressed)
	encPerMB := float64(encNs) / mb
	if st.samples == 0 {
		st.ratio, st.encNsPerMB = ratio, encPerMB
	} else {
		st.ratio += ewmaAlpha * (ratio - st.ratio)
		st.encNsPerMB += ewmaAlpha * (encPerMB - st.encNsPerMB)
	}
	st.samples++
	if rpcNs > 0 && wire >= linkMinSample {
		wireMB := float64(wire) / (1 << 20)
		linkPerMB := float64(rpcNs) / wireMB
		if s.linkNsPerMB == 0 {
			s.linkNsPerMB = linkPerMB
		} else {
			s.linkNsPerMB += ewmaAlpha * (linkPerMB - s.linkNsPerMB)
		}
	}
}

// Snapshot reports the current estimates for codec c (zeros if unsampled)
// and the link EWMA, for metrics export.
func (s *Selector) Snapshot(c Codec) (ratio, encNsPerMB, linkNsPerMB float64, samples int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if st := s.stats[c.ID()]; st != nil {
		ratio, encNsPerMB, samples = st.ratio, st.encNsPerMB, st.samples
	}
	return ratio, encNsPerMB, s.linkNsPerMB, samples
}
