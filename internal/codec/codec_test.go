package codec

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
)

// conformanceCase is one corpus entry every registered codec must survive.
type conformanceCase struct {
	name string
	data []byte
}

// float32Grid synthesizes a smooth float32 field, the shape of real
// simulation block data (near-constant exponents, coherent mantissas).
func float32Grid(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([]byte, n*4)
	for i := 0; i < n; i++ {
		v := float32(math.Sin(float64(i)/37.0) + 0.01*rng.Float64())
		binary.LittleEndian.PutUint32(out[i*4:], math.Float32bits(v))
	}
	return out
}

// float64Grid is the float64 analog.
func float64Grid(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([]byte, n*8)
	for i := 0; i < n; i++ {
		v := math.Cos(float64(i)/53.0) + 0.001*rng.Float64()
		binary.LittleEndian.PutUint64(out[i*8:], math.Float64bits(v))
	}
	return out
}

func randomBytes(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([]byte, n)
	rng.Read(out)
	return out
}

func conformanceCorpus() []conformanceCase {
	// The 64 MiB case is the largest block the stage wire admits
	// (maxStageUncompressed); built from a repeating float pattern so the
	// flate pass stays fast while still exercising full-size paths.
	big := make([]byte, 64<<20)
	pattern := float32Grid(1024, 7)
	for off := 0; off < len(big); off += len(pattern) {
		copy(big[off:], pattern)
	}
	return []conformanceCase{
		{"empty", nil},
		{"one-byte", []byte{0x5A}},
		{"three-bytes", []byte{1, 2, 3}},
		{"uniform", bytes.Repeat([]byte{0x42}, 4096)},
		{"float32-grid", float32Grid(32*32*32, 1)},
		{"float64-grid", float64Grid(16*16*16, 2)},
		{"float32-unaligned", float32Grid(1000, 3)[:3999]}, // not %4
		{"incompressible", randomBytes(1<<16, 4)},
		{"incompressible-odd", randomBytes(65537, 5)},
		{"max-64mib", big},
	}
}

// TestCodecConformance runs the shared harness over every registered codec:
// bit-identical round trips, MaxEncodedSize honored, truncated input errors
// (never panics), corrupted input never panics and never lies about length.
func TestCodecConformance(t *testing.T) {
	corpus := conformanceCorpus()
	for _, c := range All() {
		c := c
		t.Run(c.Name(), func(t *testing.T) {
			for _, tc := range corpus {
				enc, err := c.Encode(nil, tc.data)
				if err != nil {
					t.Fatalf("%s: encode: %v", tc.name, err)
				}
				if len(enc) > c.MaxEncodedSize(len(tc.data)) {
					t.Fatalf("%s: encoded %d bytes > MaxEncodedSize %d", tc.name, len(enc), c.MaxEncodedSize(len(tc.data)))
				}
				dec, err := c.Decode(nil, enc, len(tc.data))
				if err != nil {
					t.Fatalf("%s: decode: %v", tc.name, err)
				}
				if !bytes.Equal(dec, tc.data) {
					t.Fatalf("%s: round trip not bit-identical (%d vs %d bytes)", tc.name, len(dec), len(tc.data))
				}
				// Decode must append to the caller's prefix, not clobber it.
				if len(tc.data) > 0 && len(tc.data) < 1<<16 {
					withPrefix, err := c.Decode([]byte("prefix"), enc, len(tc.data))
					if err != nil || !bytes.HasPrefix(withPrefix, []byte("prefix")) || !bytes.Equal(withPrefix[6:], tc.data) {
						t.Fatalf("%s: decode does not append to dst (err=%v)", tc.name, err)
					}
				}
				if len(tc.data) >= 1<<16 {
					continue // truncation/corruption sweeps only on the small cases
				}
				// Every truncation must error, never panic and never succeed
				// while producing the wrong number of bytes.
				for n := 0; n < len(enc); n++ {
					out, err := c.Decode(nil, enc[:n], len(tc.data))
					if err == nil && len(out) != len(tc.data) {
						t.Fatalf("%s: truncated decode [:%d] returned %d bytes without error", tc.name, n, len(out))
					}
				}
				// Corruption has no checksum to catch it, so wrong bytes can
				// decode "successfully" — but it must never panic, and a nil
				// error must still mean exactly srcLen output bytes.
				for i := 0; i < len(enc); i++ {
					bad := append([]byte(nil), enc...)
					bad[i] ^= 0xFF
					out, err := c.Decode(nil, bad, len(tc.data))
					if err == nil && len(out) != len(tc.data) {
						t.Fatalf("%s: corrupted decode at %d returned %d bytes without error", tc.name, i, len(out))
					}
				}
			}
		})
	}
}

// TestCodecWrongLength: a decode asked for a different original length than
// the stream encodes must error, not return silently wrong bytes.
func TestCodecWrongLength(t *testing.T) {
	data := float32Grid(1024, 9)
	for _, c := range All() {
		enc, err := c.Encode(nil, data)
		if err != nil {
			t.Fatal(err)
		}
		for _, wrong := range []int{0, 1, len(data) - 4, len(data) - 1} {
			if out, err := c.Decode(nil, enc, wrong); err == nil && len(out) != wrong {
				t.Fatalf("%s: decode with wrong srcLen %d returned %d bytes without error", c.Name(), wrong, len(out))
			}
		}
	}
}

// TestRegistry covers the lookup surface: IDs are wire-stable, names
// resolve, unknown names report the known set.
func TestRegistry(t *testing.T) {
	want := map[uint8]string{RawID: "raw", FlateID: "flate", ShuffleID: "shuffle", DeltaID: "delta"}
	for id, name := range want {
		c, ok := ByID(id)
		if !ok || c.Name() != name {
			t.Fatalf("ByID(%d) = %v, %v; want %s", id, c, ok, name)
		}
		byName, ok := ByName(name)
		if !ok || byName.ID() != id {
			t.Fatalf("ByName(%q) mismatch", name)
		}
		viaLookup, err := Lookup(name)
		if err != nil || viaLookup.ID() != id {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
	}
	if _, err := Lookup("zstd"); err == nil {
		t.Fatal("unknown codec name must error")
	}
	ids := IDs()
	if len(ids) < 4 {
		t.Fatalf("IDs() = %v", ids)
	}
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Fatalf("IDs() not ascending: %v", ids)
		}
	}
	names := Names()
	all := All()
	if len(names) != len(ids) || len(all) != len(ids) {
		t.Fatalf("Names/All length mismatch: %v vs %v", names, ids)
	}
	for i, c := range all {
		if c.ID() != ids[i] || c.Name() != names[i] {
			t.Fatalf("All()[%d] out of order", i)
		}
	}
}

// TestShuffleStride2Decode: encode never emits stride 2, but the wire
// format admits it and the decoder must honor it (forward compatibility
// for int16 data).
func TestShuffleStride2Decode(t *testing.T) {
	orig := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	shuffled := make([]byte, len(orig))
	shuffleBytes(shuffled, orig, 2)
	enc := rleAppend([]byte{2}, shuffled)
	dec, err := Shuffle{}.Decode(nil, enc, len(orig))
	if err != nil || !bytes.Equal(dec, orig) {
		t.Fatalf("stride-2 decode: %v %v", dec, err)
	}
	// Invalid strides are corruption.
	for _, s := range []byte{0, 3, 5, 16, 255} {
		if _, err := (Shuffle{}).Decode(nil, append([]byte{s}, enc[1:]...), len(orig)); err == nil {
			t.Fatalf("stride %d accepted", s)
		}
	}
	// A payload that decodes to more bytes than srcLen is corruption (the
	// unaligned-tail rules make srcLen=7 format-valid, but this RLE stream
	// carries 8 bytes).
	if _, err := (Shuffle{}).Decode(nil, enc, 7); err == nil {
		t.Fatal("stride 2 payload longer than srcLen accepted")
	}
	// Unaligned srcLen: the aligned prefix shuffles, the tail rides verbatim.
	odd := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9}
	shuffledOdd := make([]byte, len(odd))
	shuffleBytes(shuffledOdd, odd, 2)
	if shuffledOdd[len(odd)-1] != 9 {
		t.Fatalf("tail byte not carried verbatim: %v", shuffledOdd)
	}
	encOdd := rleAppend([]byte{2}, shuffledOdd)
	dec, err = Shuffle{}.Decode(nil, encOdd, len(odd))
	if err != nil || !bytes.Equal(dec, odd) {
		t.Fatalf("stride-2 unaligned decode: %v %v", dec, err)
	}
}

// TestShuffleFlateBackend: the 0x80 format bit selects DEFLATE over the
// shuffled bytes. Incompressible input must take that trial (RLE breaks
// even at best on it) and still round-trip; a hand-flagged frame with a
// garbage payload is corruption.
func TestShuffleFlateBackend(t *testing.T) {
	noise := randomBytes(1<<16, 9)
	enc, err := Shuffle{}.Encode(nil, noise)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Shuffle{}.Decode(nil, enc, len(noise))
	if err != nil || !bytes.Equal(dec, noise) {
		t.Fatalf("round trip through entropy trial: %v", err)
	}
	// Force the flag onto an RLE payload: not a DEFLATE stream, so corrupt.
	rle := rleAppend([]byte{4 | 0x80}, noise[:64])
	if _, err := (Shuffle{}).Decode(nil, rle, 64); err == nil {
		t.Fatal("flate-flagged RLE payload accepted")
	}
	// A genuine flagged frame decodes, stride 1 and stride 4 alike.
	grid := float32Grid(1024, 3)
	shuffled := make([]byte, len(grid))
	shuffleBytes(shuffled, grid, 4)
	flated, err := (&Flate{}).Encode([]byte{4 | 0x80}, shuffled)
	if err != nil {
		t.Fatal(err)
	}
	dec, err = Shuffle{}.Decode(nil, flated, len(grid))
	if err != nil || !bytes.Equal(dec, grid) {
		t.Fatalf("hand-built flate-backed frame: %v", err)
	}
	flat1, err := (&Flate{}).Encode([]byte{1 | 0x80}, grid)
	if err != nil {
		t.Fatal(err)
	}
	dec, err = Shuffle{}.Decode(nil, flat1, len(grid))
	if err != nil || !bytes.Equal(dec, grid) {
		t.Fatalf("stride-1 flate-backed frame: %v", err)
	}
}

// TestRawLengthMismatch: raw's only failure mode.
func TestRawLengthMismatch(t *testing.T) {
	if _, err := (Raw{}).Decode(nil, []byte{1, 2, 3}, 4); err == nil {
		t.Fatal("raw decode with wrong length accepted")
	}
}

// TestFlateTrailingGarbage: extra bytes after the DEFLATE stream are
// corruption, not silently ignored.
func TestFlateTrailingGarbage(t *testing.T) {
	f := &Flate{}
	data := float32Grid(256, 11)
	enc, err := f.Encode(nil, data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Decode(nil, append(enc, 0xAB), len(data)); err == nil {
		t.Fatal("trailing garbage after DEFLATE stream accepted")
	}
}

// TestShuffleCompressesFloatGrids: the reason the codec exists — float
// grids must actually shrink.
func TestShuffleCompressesFloatGrids(t *testing.T) {
	for _, tc := range []struct {
		name string
		data []byte
	}{
		{"f32", float32Grid(32*32*32, 21)},
		{"f64", float64Grid(16*16*16, 22)},
	} {
		enc, err := Shuffle{}.Encode(nil, tc.data)
		if err != nil {
			t.Fatal(err)
		}
		if len(enc) >= len(tc.data) {
			t.Fatalf("%s: shuffle did not compress (%d -> %d)", tc.name, len(tc.data), len(enc))
		}
	}
}

// FuzzCodecDecode: arbitrary input to any registered codec's decoder must
// never panic, never allocate past the claimed length, and a nil error must
// mean exactly srcLen output bytes. Seeded from the conformance corpus.
func FuzzCodecDecode(f *testing.F) {
	for _, c := range All() {
		for _, tc := range conformanceCorpus() {
			if len(tc.data) >= 1<<16 {
				continue
			}
			enc, err := c.Encode(nil, tc.data)
			if err != nil {
				f.Fatal(err)
			}
			f.Add(c.ID(), enc, len(tc.data))
		}
	}
	f.Add(uint8(200), []byte{1, 2, 3}, 3) // unregistered ID
	f.Fuzz(func(t *testing.T, id uint8, data []byte, srcLen int) {
		c, ok := ByID(id)
		if !ok {
			return
		}
		if srcLen < 0 || srcLen > 1<<20 {
			return
		}
		out, err := c.Decode(nil, data, srcLen)
		if err == nil && len(out) != srcLen {
			t.Fatalf("%s: decode returned %d bytes for srcLen %d without error", c.Name(), len(out), srcLen)
		}
	})
}
