// Package codec implements the pluggable block codecs of the staging wire
// (DESIGN.md §10). Simulation blocks are highly compressible — float grids
// are byte-wise redundant and temporally coherent — so the stage hot path
// compresses payloads on the client before exposing them for the server's
// bulk pull, cutting bytes-on-the-wire where the link, not the CPU, is the
// bottleneck (the Catalyst-ADIOS2 observation).
//
// A Codec transforms whole blocks: Encode appends the coded form of src to
// dst, Decode reverses it given the exact original length carried by the
// stage frame. Codecs are stateless and safe for concurrent use; the one
// piece of cross-iteration state — the previous block each delta encoding
// XORs against — lives in DeltaState, owned by the caller on each side of
// the wire, with bounded memory and explicit invalidation (see delta.go).
//
// Registered codecs:
//
//	raw     (0) — identity passthrough; the fallback every peer accepts
//	flate   (1) — stdlib DEFLATE at BestSpeed, pooled writers/readers
//	shuffle (2) — byte-shuffle by float stride, then RLE or (when the
//	              planes don't form runs) DEFLATE over the shuffled bytes;
//	              tuned for float32/float64 grid data
//	delta   (3) — the shuffle transform applied to the XOR against the
//	              previous iteration's block (zero base when no history)
//
// Every codec must survive the shared conformance suite (codec_test.go):
// bit-identical round trips on float grids, zero-length and 1-byte blocks,
// incompressible data, 64 MiB blocks, and errors — never panics — on
// truncated or corrupted input.
package codec

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Codec IDs are wire values: they appear in the stage frame and must never
// be renumbered.
const (
	RawID     uint8 = 0
	FlateID   uint8 = 1
	ShuffleID uint8 = 2
	DeltaID   uint8 = 3
)

// ErrCorrupt reports undecodable codec input (truncated, malformed, or not
// matching the declared uncompressed length).
var ErrCorrupt = errors.New("codec: corrupt input")

// Codec is one block transform. Implementations are stateless and safe for
// concurrent use from any number of stage handlers.
type Codec interface {
	// ID is the codec's wire identifier.
	ID() uint8
	// Name is the codec's stable human name (flag values, metric labels).
	Name() string
	// MaxEncodedSize bounds Encode's output length for srcLen input bytes,
	// so callers can draw a right-sized pooled buffer.
	MaxEncodedSize(srcLen int) int
	// Encode appends the coded form of src to dst and returns the extended
	// slice. With MaxEncodedSize(len(src)) of spare capacity in dst the
	// well-tuned codecs do not allocate beyond pooled scratch.
	Encode(dst, src []byte) ([]byte, error)
	// Decode appends exactly srcLen decoded bytes to dst, where srcLen is
	// the original (pre-Encode) length carried out of band by the stage
	// frame. Input that is truncated, corrupt, or inconsistent with srcLen
	// returns ErrCorrupt — never panics, and never allocates proportionally
	// to lengths claimed by the (untrusted) input.
	Decode(dst, src []byte, srcLen int) ([]byte, error)
}

var (
	regMu    sync.RWMutex
	registry = map[uint8]Codec{}
	byName   = map[string]Codec{}
)

// Register installs a codec under its ID and name. The built-in codecs
// register at init; tests may add more.
func Register(c Codec) {
	regMu.Lock()
	defer regMu.Unlock()
	registry[c.ID()] = c
	byName[c.Name()] = c
}

// ByID returns the codec registered under id.
func ByID(id uint8) (Codec, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	c, ok := registry[id]
	return c, ok
}

// ByName returns the codec registered under name ("raw", "flate", ...).
func ByName(name string) (Codec, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	c, ok := byName[name]
	return c, ok
}

// Lookup resolves a codec by name with a helpful error listing the choices.
func Lookup(name string) (Codec, error) {
	if c, ok := ByName(name); ok {
		return c, nil
	}
	return nil, fmt.Errorf("codec: unknown codec %q (known: %v)", name, Names())
}

// IDs lists the registered codec IDs, ascending.
func IDs() []uint8 {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]uint8, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Names lists the registered codec names in ID order.
func Names() []string {
	out := make([]string, 0, 4)
	for _, id := range IDs() {
		c, _ := ByID(id)
		out = append(out, c.Name())
	}
	return out
}

// All returns the registered codecs in ID order.
func All() []Codec {
	ids := IDs()
	out := make([]Codec, 0, len(ids))
	for _, id := range ids {
		c, _ := ByID(id)
		out = append(out, c)
	}
	return out
}

// Raw is the identity codec: the no-compression fallback every peer
// accepts, and what adaptive selection falls back to when the link is
// faster than any codec.
type Raw struct{}

func (Raw) ID() uint8                              { return RawID }
func (Raw) Name() string                           { return "raw" }
func (Raw) MaxEncodedSize(n int) int               { return n }
func (Raw) Encode(dst, src []byte) ([]byte, error) { return append(dst, src...), nil }

func (Raw) Decode(dst, src []byte, srcLen int) ([]byte, error) {
	if len(src) != srcLen {
		return nil, ErrCorrupt
	}
	return append(dst, src...), nil
}

func init() {
	Register(Raw{})
	Register(stdFlate) // shared with the Shuffle/Delta entropy backend
	Register(Shuffle{})
	Register(Delta{})
}
