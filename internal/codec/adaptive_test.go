package codec

import "testing"

// feed records n identical samples for c.
func feed(s *Selector, c Codec, uncompressed, wire int, encNs, rpcNs int64, n int) {
	for i := 0; i < n; i++ {
		s.Record(c, uncompressed, wire, encNs, rpcNs)
	}
}

// TestSelectorProbesUnsampledFirst: before any statistics exist every
// candidate must get probed once, in order.
func TestSelectorProbesUnsampledFirst(t *testing.T) {
	s := NewSelector([]Codec{Raw{}, Shuffle{}, Delta{}})
	seen := map[uint8]bool{}
	for i := 0; i < 3; i++ {
		c := s.Pick()
		if seen[c.ID()] {
			t.Fatalf("probe %d repeated codec %s before covering all candidates", i, c.Name())
		}
		seen[c.ID()] = true
		s.Record(c, 1<<20, 1<<20, 1000, 0)
	}
	if len(seen) != 3 {
		t.Fatalf("probed %d of 3 candidates", len(seen))
	}
}

// TestSelectorRawWinsOnFastLink: when the link moves bytes faster than the
// codec saves them, the cost model must settle on raw.
func TestSelectorRawWinsOnFastLink(t *testing.T) {
	s := NewSelector([]Codec{Raw{}, Shuffle{}})
	const mb = 1 << 20
	// Fast link: 1 MB wire in 100µs (10 GB/s). Shuffle halves the bytes but
	// burns 5ms/MB of CPU — a loss on this link.
	feed(s, Raw{}, mb, mb, 0, 100_000, 4)
	feed(s, Shuffle{}, mb, mb/2, 5_000_000, 50_000, 4)
	raw := 0
	for i := 0; i < 100; i++ {
		c := s.Pick()
		if c.ID() == RawID {
			raw++
		}
		// Keep stats steady so probes don't drift the estimates.
		if c.ID() == RawID {
			s.Record(c, mb, mb, 0, 100_000)
		} else {
			s.Record(c, mb, mb/2, 5_000_000, 50_000)
		}
	}
	if raw < 90 {
		t.Fatalf("raw picked %d/100 on a fast link", raw)
	}
}

// TestSelectorCompressionWinsOnSlowLink: on a slow link the ratio term
// dominates and the compressing codec must win.
func TestSelectorCompressionWinsOnSlowLink(t *testing.T) {
	s := NewSelector([]Codec{Raw{}, Shuffle{}})
	const mb = 1 << 20
	// Slow link: 1 MB wire in 100ms (10 MB/s). Shuffle's 5ms/MB encode buys
	// back 50ms of wire time.
	feed(s, Raw{}, mb, mb, 0, 100_000_000, 4)
	feed(s, Shuffle{}, mb, mb/2, 5_000_000, 50_000_000, 4)
	shuffle := 0
	for i := 0; i < 100; i++ {
		c := s.Pick()
		if c.ID() == ShuffleID {
			shuffle++
			s.Record(c, mb, mb/2, 5_000_000, 50_000_000)
		} else {
			s.Record(c, mb, mb, 0, 100_000_000)
		}
	}
	if shuffle < 90 {
		t.Fatalf("shuffle picked %d/100 on a slow link", shuffle)
	}
}

// TestSelectorPeriodicProbe: even with a settled winner, the probeEvery
// cadence must still sample the losers so estimates can recover.
func TestSelectorPeriodicProbe(t *testing.T) {
	s := NewSelector([]Codec{Raw{}, Shuffle{}})
	const mb = 1 << 20
	feed(s, Raw{}, mb, mb, 0, 100_000, 4)
	feed(s, Shuffle{}, mb, mb/2, 50_000_000, 100_000, 4) // hopeless codec
	picked := map[uint8]int{}
	for i := 0; i < 64; i++ {
		c := s.Pick()
		picked[c.ID()]++
		if c.ID() == RawID {
			s.Record(c, mb, mb, 0, 100_000)
		} else {
			s.Record(c, mb, mb/2, 50_000_000, 100_000)
		}
	}
	if picked[ShuffleID] == 0 {
		t.Fatal("losing codec never re-probed")
	}
	if picked[ShuffleID] > 8 {
		t.Fatalf("losing codec picked %d/64 — probing too often", picked[ShuffleID])
	}
}

// TestSelectorRawAlwaysCandidate: SetCandidates without raw must add it.
func TestSelectorRawAlwaysCandidate(t *testing.T) {
	s := NewSelector([]Codec{Shuffle{}})
	ids := map[uint8]bool{}
	for i := 0; i < 2; i++ {
		c := s.Pick()
		ids[c.ID()] = true
		s.Record(c, 1<<20, 1<<20, 0, 0)
	}
	if !ids[RawID] || !ids[ShuffleID] {
		t.Fatalf("candidates probed: %v", ids)
	}
	// Narrowing after negotiation keeps retained stats but drops the codec.
	s.SetCandidates([]Codec{Raw{}})
	for i := 0; i < 40; i++ {
		if c := s.Pick(); c.ID() != RawID {
			t.Fatalf("dropped candidate %s still picked", c.Name())
		}
	}
}

// TestSelectorSnapshotAndLinkEWMA: Snapshot reports what Record fed in;
// tiny payloads must not pollute the link estimate.
func TestSelectorSnapshotAndLinkEWMA(t *testing.T) {
	s := NewSelector([]Codec{Raw{}})
	if ratio, enc, link, n := s.Snapshot(Raw{}); ratio != 0 || enc != 0 || link != 0 || n != 0 {
		t.Fatal("fresh selector should report zeros")
	}
	const mb = 1 << 20
	s.Record(Raw{}, mb, mb, 2_000_000, 10_000_000)
	ratio, enc, link, n := s.Snapshot(Raw{})
	if n != 1 || ratio != 1.0 || enc != 2_000_000 || link != 10_000_000 {
		t.Fatalf("snapshot after one sample: ratio=%v enc=%v link=%v n=%d", ratio, enc, link, n)
	}
	// A 1 KiB payload is below linkMinSample: ratio/enc update, link must not.
	s.Record(Raw{}, 1024, 1024, 0, 1)
	if _, _, link2, _ := s.Snapshot(Raw{}); link2 != link {
		t.Fatalf("tiny payload moved link estimate: %v -> %v", link, link2)
	}
	// Zero rpcNs (no timing) must not move the link either.
	s.Record(Raw{}, mb, mb, 0, 0)
	if _, _, link3, _ := s.Snapshot(Raw{}); link3 != link {
		t.Fatal("zero rpcNs moved link estimate")
	}
	// Zero-length blocks are ignored entirely.
	s.Record(Raw{}, 0, 0, 0, 0)
	if _, _, _, n4 := s.Snapshot(Raw{}); n4 != 3 {
		t.Fatalf("zero-length block counted: n=%d", n4)
	}
}
