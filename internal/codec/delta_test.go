package codec

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
)

// evolveGrid mutates a float32 grid the way a simulation step does: small
// coherent changes to a subset of cells. This is what makes XOR residuals
// mostly zero.
func evolveGrid(grid []byte, rng *rand.Rand) {
	for i := 0; i+4 <= len(grid); i += 4 {
		if rng.Intn(8) != 0 {
			continue
		}
		v := math.Float32frombits(binary.LittleEndian.Uint32(grid[i:]))
		v += float32(rng.Float64()) * 0.001
		binary.LittleEndian.PutUint32(grid[i:], math.Float32bits(v))
	}
}

// stageDelta performs one client-side delta stage against cs and returns the
// wire bytes plus whether a base was used — the same sequence encodeStage
// runs in internal/core.
func stageDelta(t *testing.T, cs *DeltaState, k DeltaKey, it uint64, data []byte) (wire []byte, base uint64, hasBase bool) {
	t.Helper()
	work := append([]byte(nil), data...)
	if prevIt, n, ok := cs.Latest(k); ok && n == len(work) && prevIt < it {
		if cs.XORBase(k, prevIt, work) {
			base, hasBase = prevIt, true
		}
	}
	wire, err := Delta{}.Encode(nil, work)
	if err != nil {
		t.Fatal(err)
	}
	cs.Remember(k, it, data)
	return wire, base, hasBase
}

// receiveDelta performs the matching server-side decode against ss,
// returning the reconstructed block or an error on base mismatch — mirroring
// handleStage.
func receiveDelta(ss *DeltaState, k DeltaKey, it uint64, wire []byte, uncompressed int, base uint64, hasBase bool) ([]byte, error) {
	data, err := (Delta{}).Decode(nil, wire, uncompressed)
	if err != nil {
		return nil, err
	}
	if hasBase {
		if !ss.XORBase(k, base, data) {
			return nil, fmt.Errorf("delta base mismatch: block %d base %d", k.Block, base)
		}
	}
	ss.Remember(k, it, data)
	return data, nil
}

// TestDeltaSequenceBitIdentical: randomized evolving grid sequences round
// trip bit-identically through paired client/server DeltaStates, and the
// deltas actually beat single-frame shuffle once history exists.
func TestDeltaSequenceBitIdentical(t *testing.T) {
	for _, blocks := range []int{1, 3} {
		rng := rand.New(rand.NewSource(int64(100 + blocks)))
		client := NewDeltaState(0)
		server := NewDeltaState(0)
		grids := make([][]byte, blocks)
		for b := range grids {
			grids[b] = float32Grid(16*16*16, int64(b))
		}
		var deltaWire, shuffleWire int
		for it := uint64(1); it <= 20; it++ {
			for b, grid := range grids {
				k := DeltaKey{Pipeline: "viz", Field: "U", Block: b}
				wire, base, hasBase := stageDelta(t, client, k, it, grid)
				if it > 1 && !hasBase {
					t.Fatalf("iter %d block %d: expected a delta base", it, b)
				}
				got, err := receiveDelta(server, k, it, wire, len(grid), base, hasBase)
				if err != nil {
					t.Fatalf("iter %d block %d: %v", it, b, err)
				}
				if !bytes.Equal(got, grid) {
					t.Fatalf("iter %d block %d: reconstruction not bit-identical", it, b)
				}
				if hasBase {
					deltaWire += len(wire)
					sw, _ := Shuffle{}.Encode(nil, grid)
					shuffleWire += len(sw)
				}
				evolveGrid(grid, rng)
			}
		}
		if deltaWire >= shuffleWire {
			t.Fatalf("delta (%d bytes) did not beat shuffle (%d bytes) on a coherent sequence", deltaWire, shuffleWire)
		}
	}
}

// TestDeltaXORBaseRefusals: every way a base can be wrong must make XORBase
// report false — the signal that forces zero-base fallback instead of
// silently wrong bytes.
func TestDeltaXORBaseRefusals(t *testing.T) {
	s := NewDeltaState(0)
	k := DeltaKey{Pipeline: "p", Field: "f", Block: 0}
	data := []byte{1, 2, 3, 4}
	if s.XORBase(k, 0, data) {
		t.Fatal("XORBase with no stored entry applied")
	}
	s.Remember(k, 5, data)
	if s.XORBase(k, 4, append([]byte(nil), data...)) {
		t.Fatal("XORBase with stale base iteration applied")
	}
	if s.XORBase(k, 6, append([]byte(nil), data...)) {
		t.Fatal("XORBase with future base iteration applied")
	}
	if s.XORBase(k, 5, []byte{1, 2, 3}) {
		t.Fatal("XORBase with mismatched length applied")
	}
	if s.XORBase(DeltaKey{Pipeline: "p", Field: "g", Block: 0}, 5, data) {
		t.Fatal("XORBase with wrong key applied")
	}
	buf := append([]byte(nil), data...)
	if !s.XORBase(k, 5, buf) {
		t.Fatal("matching XORBase refused")
	}
	for _, b := range buf {
		if b != 0 {
			t.Fatal("XOR against identical base should zero the buffer")
		}
	}
}

// TestDeltaSkippedIteration: a block absent for one iteration resumes with
// the older base (Latest exposes the real stored iteration, and the encoder
// uses that), still bit-identical end to end.
func TestDeltaSkippedIteration(t *testing.T) {
	client, server := NewDeltaState(0), NewDeltaState(0)
	k := DeltaKey{Pipeline: "viz", Field: "U", Block: 0}
	grid := float32Grid(1024, 42)
	rng := rand.New(rand.NewSource(43))
	for _, it := range []uint64{1, 2, 4, 7} { // gaps at 3, 5, 6
		wire, base, hasBase := stageDelta(t, client, k, it, grid)
		got, err := receiveDelta(server, k, it, wire, len(grid), base, hasBase)
		if err != nil {
			t.Fatalf("iter %d: %v", it, err)
		}
		if !bytes.Equal(got, grid) {
			t.Fatalf("iter %d: not bit-identical", it)
		}
		evolveGrid(grid, rng)
	}
}

// TestDeltaMembershipChangeInvalidation: after InvalidatePipeline (what a
// membership change triggers on both sides) the next stage must be
// zero-base, and a server that did NOT invalidate must reject a based frame
// rather than reconstruct wrong bytes.
func TestDeltaMembershipChangeInvalidation(t *testing.T) {
	client, server := NewDeltaState(0), NewDeltaState(0)
	k := DeltaKey{Pipeline: "viz", Field: "U", Block: 0}
	grid := float32Grid(1024, 7)
	wire, base, hasBase := stageDelta(t, client, k, 1, grid)
	if _, err := receiveDelta(server, k, 1, wire, len(grid), base, hasBase); err != nil {
		t.Fatal(err)
	}

	// Both sides invalidate: next frame is zero-base and still correct.
	client.InvalidatePipeline("viz")
	server.InvalidatePipeline("viz")
	if client.Bytes() != 0 {
		t.Fatalf("client still holds %d bytes after invalidation", client.Bytes())
	}
	wire, base, hasBase = stageDelta(t, client, k, 2, grid)
	if hasBase {
		t.Fatal("stage after invalidation used a base")
	}
	got, err := receiveDelta(server, k, 2, wire, len(grid), base, hasBase)
	if err != nil || !bytes.Equal(got, grid) {
		t.Fatalf("zero-base frame after invalidation: %v", err)
	}

	// Server-only invalidation (crash recovery on the server): a based frame
	// from the client must be rejected, never silently wrong.
	server.InvalidatePipeline("viz")
	wire, base, hasBase = stageDelta(t, client, k, 3, grid)
	if !hasBase {
		t.Fatal("client should still have its base")
	}
	if _, err := receiveDelta(server, k, 3, wire, len(grid), base, hasBase); err == nil {
		t.Fatal("server accepted a based frame with no stored base")
	}
	// Other pipelines are untouched by InvalidatePipeline.
	other := DeltaKey{Pipeline: "img", Field: "U", Block: 0}
	client.Remember(other, 1, grid)
	client.InvalidatePipeline("viz")
	if _, _, ok := client.Latest(other); !ok {
		t.Fatal("InvalidatePipeline dropped another pipeline's base")
	}
}

// TestDeltaRememberSemantics: same-length in-place reuse, length-change
// replacement, Reset, Bytes accounting, and the oversized-buf guard.
func TestDeltaRememberSemantics(t *testing.T) {
	s := NewDeltaState(1024)
	k := DeltaKey{Pipeline: "p", Field: "f", Block: 1}
	s.Remember(k, 1, bytes.Repeat([]byte{1}, 100))
	if s.Bytes() != 100 {
		t.Fatalf("Bytes() = %d", s.Bytes())
	}
	s.Remember(k, 2, bytes.Repeat([]byte{2}, 100)) // same length: in-place
	if it, n, ok := s.Latest(k); !ok || it != 2 || n != 100 || s.Bytes() != 100 {
		t.Fatalf("after in-place update: it=%d n=%d bytes=%d", it, n, s.Bytes())
	}
	s.Remember(k, 3, bytes.Repeat([]byte{3}, 200)) // resize: replace
	if it, n, _ := s.Latest(k); it != 3 || n != 200 || s.Bytes() != 200 {
		t.Fatalf("after resize: it=%d n=%d bytes=%d", it, n, s.Bytes())
	}
	s.Remember(k, 4, make([]byte, 2048)) // over the whole limit: ignored
	if it, _, _ := s.Latest(k); it != 3 {
		t.Fatal("oversized Remember replaced the entry")
	}
	s.Reset()
	if s.Bytes() != 0 {
		t.Fatalf("Bytes() = %d after Reset", s.Bytes())
	}
	if _, _, ok := s.Latest(k); ok {
		t.Fatal("entry survived Reset")
	}
}

// TestDeltaEvictionBound: the memory bound holds under churn and evicts
// least-recently-used first.
func TestDeltaEvictionBound(t *testing.T) {
	s := NewDeltaState(1000)
	for b := 0; b < 50; b++ {
		s.Remember(DeltaKey{Pipeline: "p", Field: "f", Block: b}, 1, make([]byte, 100))
		if s.Bytes() > 1000 {
			t.Fatalf("Bytes() = %d exceeds limit", s.Bytes())
		}
	}
	if s.Bytes() != 1000 {
		t.Fatalf("Bytes() = %d, want full at 1000", s.Bytes())
	}
	// Blocks 0..39 were evicted; 40..49 remain.
	if _, _, ok := s.Latest(DeltaKey{Pipeline: "p", Field: "f", Block: 0}); ok {
		t.Fatal("oldest entry not evicted")
	}
	if _, _, ok := s.Latest(DeltaKey{Pipeline: "p", Field: "f", Block: 49}); !ok {
		t.Fatal("newest entry evicted")
	}
	// Touching an old entry via XORBase protects it from the next eviction.
	k45 := DeltaKey{Pipeline: "p", Field: "f", Block: 45}
	if !s.XORBase(k45, 1, make([]byte, 100)) {
		t.Fatal("XORBase on retained entry refused")
	}
	for b := 100; b < 109; b++ {
		s.Remember(DeltaKey{Pipeline: "p", Field: "f", Block: b}, 1, make([]byte, 100))
	}
	if _, _, ok := s.Latest(k45); !ok {
		t.Fatal("recently used entry evicted before stale ones")
	}
}

// TestDeltaStateConcurrent drives all DeltaState operations from many
// goroutines; run under -race this is the single-ownership proof for the
// shared state.
func TestDeltaStateConcurrent(t *testing.T) {
	s := NewDeltaState(64 << 10)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			buf := make([]byte, 512)
			for i := 0; i < 500; i++ {
				k := DeltaKey{Pipeline: "p", Field: "f", Block: rng.Intn(32)}
				switch rng.Intn(5) {
				case 0:
					s.Remember(k, uint64(i), buf)
				case 1:
					s.XORBase(k, uint64(rng.Intn(500)), buf)
				case 2:
					s.Latest(k)
				case 3:
					s.Bytes()
				case 4:
					if rng.Intn(50) == 0 {
						s.InvalidatePipeline("p")
					}
				}
			}
		}(g)
	}
	wg.Wait()
	s.Reset()
	if s.Bytes() != 0 {
		t.Fatalf("Bytes() = %d after concurrent churn + Reset", s.Bytes())
	}
}

// TestXORInto covers the unrolled tail boundaries.
func TestXORInto(t *testing.T) {
	for _, n := range []int{0, 1, 7, 8, 9, 15, 16, 17, 1000} {
		a := randomBytes(n, int64(n))
		b := randomBytes(n, int64(n+1))
		got := append([]byte(nil), a...)
		xorInto(got, b)
		for i := range got {
			if got[i] != a[i]^b[i] {
				t.Fatalf("n=%d: mismatch at %d", n, i)
			}
		}
	}
}
