package codec

import "colza/internal/bufpool"

// Shuffle is the grid codec: transpose the block so that byte k of every
// float lands contiguously ("byte shuffle", the classic trick from
// Blosc/HDF5), then code the result. Float32/float64 grids have
// near-constant sign/exponent bytes across a block, so after the shuffle
// those bytes form long runs that PackBits RLE collapses at memory speed.
// When the planes do not form runs — unaligned sections in a serialized
// block, or mantissa bytes that vary smoothly without repeating — RLE
// breaks even at best, so Encode falls back to DEFLATE over the shuffled
// bytes (the Blosc shuffle+LZ pairing), trading encode CPU for the ratio
// the adaptive controller is weighing against the link anyway.
//
// Wire layout: one format byte, then the payload. The low bits of the
// format byte carry the shuffle stride (1, 2, 4, or 8); the 0x80 bit
// selects the payload coder (clear = RLE, set = DEFLATE). Blocks whose
// length is not a stride multiple shuffle the aligned prefix and carry the
// remaining tail bytes verbatim at the end of the shuffled form — real
// staged blocks are serialized messages whose headers misalign the float
// payload, and stride-1 fallback would forfeit the plane structure.
// Encode trials strides 4 and 8, covering float32 and float64 data without
// being told the element type.
type Shuffle struct{}

// shuffleFlateFlag marks a DEFLATE-coded payload in the format byte.
const shuffleFlateFlag = 0x80

// stdFlate is the shared Flate instance: the registry entry and the
// Shuffle/Delta entropy backend draw from the same writer/reader pools.
var stdFlate = &Flate{}

func (Shuffle) ID() uint8    { return ShuffleID }
func (Shuffle) Name() string { return "shuffle" }

// MaxEncodedSize: format byte + worst-case RLE expansion (1 control byte
// per 128 literals) + slack. The DEFLATE fallback only ships when smaller
// than the RLE trial, so the RLE bound covers both payload coders.
func (Shuffle) MaxEncodedSize(n int) int { return 1 + n + n/128 + 8 }

func (s Shuffle) Encode(dst, src []byte) ([]byte, error) {
	n := len(src)
	if n == 0 {
		return append(dst, 1), nil
	}
	if n < 8 {
		return appendShuffleRLE(dst, src, 1), nil
	}
	bound := s.MaxEncodedSize(n)
	// The stride-4 shuffle is shared by the RLE trial and the DEFLATE
	// fallback, so materialize it once.
	shuf4 := bufpool.Get(n)[:n]
	shuffleBytes(shuf4, src, 4)
	a := rleAppend(append(bufpool.Get(bound)[:0], 4), shuf4)
	b := appendShuffleRLE(bufpool.Get(bound)[:0], src, 8)
	best := a
	if len(b) < len(a) {
		best = b
	}
	// RLE pays for itself only when the planes form long runs. If it did
	// not at least halve the block, the planes are varying smoothly rather
	// than repeating — spend the entropy coder on the shuffled bytes and
	// keep whichever came out smaller. (Below half, RLE is already in the
	// regime where DEFLATE's extra CPU buys little.)
	var c []byte
	if len(best) >= n/2 {
		var err error
		c, err = stdFlate.Encode(append(bufpool.Get(bound)[:0], 4|shuffleFlateFlag), shuf4)
		if err != nil {
			bufpool.Put(a)
			bufpool.Put(b)
			bufpool.Put(shuf4)
			return nil, err
		}
		if len(c) < len(best) {
			best = c
		}
	}
	dst = append(dst, best...)
	bufpool.Put(a)
	bufpool.Put(b)
	if c != nil {
		bufpool.Put(c)
	}
	bufpool.Put(shuf4)
	return dst, nil
}

func (Shuffle) Decode(dst, src []byte, srcLen int) ([]byte, error) {
	if len(src) < 1 {
		return nil, ErrCorrupt
	}
	flated := src[0]&shuffleFlateFlag != 0
	stride := int(src[0] &^ byte(shuffleFlateFlag))
	src = src[1:]
	switch stride {
	case 1, 2, 4, 8:
	default:
		return nil, ErrCorrupt
	}
	if srcLen == 0 {
		if len(src) != 0 {
			return nil, ErrCorrupt
		}
		return dst, nil
	}
	if stride == 1 {
		if flated {
			return stdFlate.Decode(dst, src, srcLen)
		}
		return rleDecodeAppend(dst, src, srcLen)
	}
	// Decode the payload into pooled scratch, then unshuffle into dst.
	raw := bufpool.Get(srcLen)
	scratch := raw[:0]
	var err error
	if flated {
		scratch, err = stdFlate.Decode(scratch, src, srcLen)
	} else {
		scratch, err = rleDecodeAppend(scratch, src, srcLen)
	}
	if err != nil {
		bufpool.Put(raw)
		return nil, err
	}
	base := len(dst)
	dst = append(dst, scratch...) // grows dst by srcLen; bytes overwritten below
	unshuffleBytes(dst[base:], scratch, stride)
	bufpool.Put(scratch)
	return dst, nil
}

// appendShuffleRLE emits [stride][RLE(shuffled src)] into dst.
func appendShuffleRLE(dst, src []byte, stride int) []byte {
	dst = append(dst, byte(stride))
	if stride == 1 {
		return rleAppend(dst, src)
	}
	scratch := bufpool.Get(len(src))
	shuffleBytes(scratch, src, stride)
	dst = rleAppend(dst, scratch)
	bufpool.Put(scratch)
	return dst
}

// shuffleBytes/unshuffleBytes live in kernels.go: word-wise transposes
// for strides 4 and 8 with a byte-wise reference for the rest.

// The RLE stream is a PackBits-style token code:
//
//	token t < 0x80  → t+1 literal bytes follow (1..128)
//	token t ≥ 0x80  → the next byte repeats (t&0x7f)+3 times (3..130)
//
// Runs shorter than 3 ride in literal spans; worst case output is
// n + ceil(n/128) for incompressible input.

func rleAppend(dst, src []byte) []byte {
	i := 0
	for i < len(src) {
		// Measure the run starting at i (capped at the 130-byte token max).
		j := i
		for j+1 < len(src) && src[j+1] == src[i] && j-i < 129 {
			j++
		}
		if run := j - i + 1; run >= 3 {
			dst = append(dst, 0x80|byte(run-3), src[i])
			i = j + 1
			continue
		}
		// Literal span: until the next ≥3 run begins or 128 bytes.
		k := i + 1
		for k < len(src) && k-i < 128 {
			if k+2 < len(src) && src[k] == src[k+1] && src[k] == src[k+2] {
				break
			}
			k++
		}
		dst = append(dst, byte(k-i-1))
		dst = append(dst, src[i:k]...)
		i = k
	}
	return dst
}

// rleDecodeAppend appends exactly want decoded bytes to dst, erroring on
// any truncation, overrun, or trailing garbage.
func rleDecodeAppend(dst, src []byte, want int) ([]byte, error) {
	produced := 0
	for len(src) > 0 {
		t := src[0]
		src = src[1:]
		if t >= 0x80 {
			n := int(t&0x7f) + 3
			if len(src) < 1 || produced+n > want {
				return nil, ErrCorrupt
			}
			b := src[0]
			src = src[1:]
			for k := 0; k < n; k++ {
				dst = append(dst, b)
			}
			produced += n
			continue
		}
		n := int(t) + 1
		if len(src) < n || produced+n > want {
			return nil, ErrCorrupt
		}
		dst = append(dst, src[:n]...)
		src = src[n:]
		produced += n
	}
	if produced != want {
		return nil, ErrCorrupt
	}
	return dst, nil
}
