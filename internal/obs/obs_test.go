package obs

import (
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestKeyComposition(t *testing.T) {
	cases := []struct {
		name   string
		labels []string
		want   string
	}{
		{"a.b", nil, "a.b"},
		{"a.b", []string{"rpc", "stage"}, "a.b{rpc=stage}"},
		{"a.b", []string{"rpc", "stage", "class", "timeout"}, "a.b{rpc=stage,class=timeout}"},
		{"a.b", []string{"odd"}, "a.b"},
	}
	for _, c := range cases {
		if got := Key(c.name, c.labels...); got != c.want {
			t.Errorf("Key(%q, %v) = %q, want %q", c.name, c.labels, got, c.want)
		}
	}
}

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x.count", "k", "v")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if r.Counter("x.count", "k", "v") != c {
		t.Fatal("same key should return the same counter")
	}
	if r.Counter("x.count", "k", "w") == c {
		t.Fatal("different label should return a different counter")
	}

	g := r.Gauge("x.depth")
	g.Add(3)
	g.Add(4)
	g.Add(-6)
	if g.Value() != 1 || g.Max() != 7 {
		t.Fatalf("gauge = (%d, max %d), want (1, max 7)", g.Value(), g.Max())
	}
	g.Set(2)
	if g.Value() != 2 || g.Max() != 7 {
		t.Fatalf("after Set: (%d, max %d)", g.Value(), g.Max())
	}
}

func TestHistogramCountSumExact(t *testing.T) {
	var h Histogram
	var sum int64
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
		sum += v
	}
	s := h.Snapshot()
	if s.Count != 1000 || s.Sum != sum {
		t.Fatalf("count=%d sum=%d, want 1000/%d", s.Count, s.Sum, sum)
	}
	if m := s.Mean(); m != float64(sum)/1000 {
		t.Fatalf("mean=%v", m)
	}
}

// Quantile estimates must land within the power-of-two bucket containing
// the true quantile: the estimate is within a factor of two of truth.
func TestHistogramQuantileWithinBucketBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var h Histogram
	values := make([]int64, 0, 5000)
	for i := 0; i < 5000; i++ {
		v := int64(rng.ExpFloat64() * 1e6) // microsecond-ish scale in ns
		if v < 1 {
			v = 1
		}
		h.Observe(v)
		values = append(values, v)
	}
	sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })
	s := h.Snapshot()
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		idx := int(q*float64(len(values))) - 1
		if idx < 0 {
			idx = 0
		}
		truth := float64(values[idx])
		got := s.Quantile(q)
		if got < truth/2 || got > truth*2 {
			t.Errorf("q%.0f: estimate %v out of factor-2 band around true %v", q*100, got, truth)
		}
	}
	// Monotonicity.
	if !(s.Quantile(0.5) <= s.Quantile(0.95) && s.Quantile(0.95) <= s.Quantile(0.99)) {
		t.Fatalf("quantiles not monotone: %v %v %v", s.Quantile(0.5), s.Quantile(0.95), s.Quantile(0.99))
	}
}

func TestHistogramQuantileDegenerate(t *testing.T) {
	var empty Histogram
	if got := empty.Snapshot().Quantile(0.99); got != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", got)
	}
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(1500) // all in bucket [1024, 2048)
	}
	s := h.Snapshot()
	for _, q := range []float64{0, 0.5, 1} {
		got := s.Quantile(q)
		if got < 1024 || got > 2048 {
			t.Errorf("q=%v: %v outside the single occupied bucket", q, got)
		}
	}
	var z Histogram
	z.Observe(0)
	z.Observe(-5)
	if s := z.Snapshot(); s.Buckets[0] != 2 {
		t.Fatalf("non-positive values must land in bucket 0, got %v", s.Buckets)
	}
}

// Merging two snapshots must be exactly equivalent to having observed
// both streams in one histogram.
func TestHistogramMergeEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var a, b, both Histogram
	for i := 0; i < 2000; i++ {
		v := int64(rng.Intn(1 << 20))
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
		both.Observe(v)
	}
	merged := a.Snapshot().Merge(b.Snapshot())
	want := both.Snapshot()
	if merged != want {
		t.Fatalf("merge mismatch:\nmerged=%+v\nwant=%+v", merged, want)
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if merged.Quantile(q) != want.Quantile(q) {
			t.Fatalf("q=%v differs after merge", q)
		}
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	var h Histogram
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(int64(w*per + i))
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("count=%d, want %d", s.Count, workers*per)
	}
	var bucketTotal int64
	for _, n := range s.Buckets {
		bucketTotal += n
	}
	if bucketTotal != s.Count {
		t.Fatalf("bucket total %d != count %d", bucketTotal, s.Count)
	}
}

func TestSnapshotAndTextDump(t *testing.T) {
	r := NewRegistry()
	r.Counter("mercury.call.count", "rpc", "colza::stage").Add(42)
	r.Gauge("margo.handlers.inflight").Add(3)
	r.Histogram("span.stage", "pipeline", "viz").Observe(int64(2 * time.Millisecond))

	snap := r.Snapshot()
	if snap.Counters["mercury.call.count{rpc=colza::stage}"] != 42 {
		t.Fatalf("snapshot counters: %v", snap.Counters)
	}
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"counter mercury.call.count{rpc=colza::stage} 42",
		"gauge margo.handlers.inflight 3 max=3",
		"hist span.stage{pipeline=viz} count=1 p50=",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("text dump missing %q:\n%s", want, out)
		}
	}
	// Duration-shaped metrics render as durations.
	if !strings.Contains(out, "ms") {
		t.Errorf("span histogram should render human-readable durations:\n%s", out)
	}
}

func TestRegistryConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Counter("c", "w", string(rune('a'+w%4))).Inc()
				r.Histogram("h").Observe(int64(i))
				r.Gauge("g").Add(1)
				if i%100 == 0 {
					r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	snap := r.Snapshot()
	var total int64
	for _, v := range snap.Counters {
		total += v
	}
	if total != 8*500 {
		t.Fatalf("counter total %d, want %d", total, 8*500)
	}
	if snap.Histograms["h"].Count != 8*500 {
		t.Fatalf("hist count %d", snap.Histograms["h"].Count)
	}
}
