// Package obs is the observability layer of the stack: counters, gauges,
// latency histograms with percentile estimation, and a span/trace API keyed
// by (pipeline, iteration, rank). The paper's entire evaluation (Figs. 6-12)
// rests on timing instrumentation — per-iteration stage/execute latency,
// rescaling cost, membership-change windows — and this package is what the
// RPC layer (mercury), the service runtime (margo), Colza itself (core), and
// the staging baselines record into.
//
// Design constraints, in order:
//
//   - stdlib only, no allocation on the metric hot path beyond the first
//     lookup (instruments are cached by composed key and updated with
//     atomics);
//   - an injectable Clock so DES-backed runs (internal/dessim) record
//     virtual time and real runs record wall time — histograms from two
//     same-seed DES runs are byte-identical;
//   - mergeable histogram snapshots, so per-server registries can be
//     aggregated by benchmarks and dashboards.
//
// Metric naming scheme: dotted lowercase names qualified by the owning
// layer ("mercury.call.count", "colza.stage.retries", "span.stage"), with
// an optional brace-delimited label set appended by Key: "name{k=v,k=v}".
// Label values come from a bounded vocabulary (RPC names, error classes,
// pipeline names) — never iteration numbers or addresses — so cardinality
// stays small.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Clock produces the current time as an offset from an arbitrary fixed
// epoch. Wall-clock registries use process start as the epoch; DES-backed
// registries use virtual time (dessim.Sim.Now is already a Clock).
type Clock func() time.Duration

var processStart = time.Now()

// WallClock returns the real-time clock, measured from process start.
func WallClock() Clock {
	return func() time.Duration { return time.Since(processStart) }
}

// Key composes a metric key from a name and label pairs:
// Key("mercury.call.count", "rpc", "colza::stage") is
// "mercury.call.count{rpc=colza::stage}". Labels must come in pairs; a
// trailing odd label is ignored.
func Key(name string, labels ...string) string {
	if len(labels) < 2 {
		return name
	}
	var b strings.Builder
	b.Grow(len(name) + 16)
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteByte('=')
		b.WriteString(labels[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous value with a high-water mark (queue depths,
// in-flight handler counts).
type Gauge struct{ v, max atomic.Int64 }

// Set stores v and updates the high-water mark.
func (g *Gauge) Set(v int64) {
	g.v.Store(v)
	g.bumpMax(v)
}

// Add applies a delta and returns the new value, updating the high-water
// mark.
func (g *Gauge) Add(d int64) int64 {
	n := g.v.Add(d)
	g.bumpMax(n)
	return n
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value reads the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Max reads the high-water mark.
func (g *Gauge) Max() int64 { return g.max.Load() }

func (g *Gauge) bumpMax(v int64) {
	for {
		cur := g.max.Load()
		if v <= cur || g.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Registry holds one component's instruments and its clock. Instruments
// are created on first use and live for the registry's lifetime; all
// methods are safe for concurrent use.
type Registry struct {
	mu       sync.RWMutex
	clock    Clock
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	trace    traceBuf
}

// NewRegistry creates an empty registry on the wall clock.
func NewRegistry() *Registry {
	return &Registry{
		clock:    WallClock(),
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		trace:    traceBuf{cap: defaultTraceCap},
	}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry, used by components that were
// not handed a dedicated one.
func Default() *Registry { return defaultRegistry }

// SetClock replaces the registry's time source (virtual time for
// DES-backed runs). It should be called before any spans start.
func (r *Registry) SetClock(c Clock) {
	if c == nil {
		return
	}
	r.mu.Lock()
	r.clock = c
	r.mu.Unlock()
}

// Now reads the registry's clock.
func (r *Registry) Now() time.Duration {
	r.mu.RLock()
	c := r.clock
	r.mu.RUnlock()
	return c()
}

// Counter returns (creating if needed) the counter for the composed key.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	k := Key(name, labels...)
	r.mu.RLock()
	c, ok := r.counters[k]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[k]; !ok {
		c = &Counter{}
		r.counters[k] = c
	}
	return c
}

// Gauge returns (creating if needed) the gauge for the composed key.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	k := Key(name, labels...)
	r.mu.RLock()
	g, ok := r.gauges[k]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[k]; !ok {
		g = &Gauge{}
		r.gauges[k] = g
	}
	return g
}

// Histogram returns (creating if needed) the histogram for the composed
// key.
func (r *Registry) Histogram(name string, labels ...string) *Histogram {
	k := Key(name, labels...)
	r.mu.RLock()
	h, ok := r.hists[k]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[k]; !ok {
		h = &Histogram{}
		r.hists[k] = h
	}
	return h
}

// GaugeSnapshot is a gauge's value and high-water mark at snapshot time.
type GaugeSnapshot struct {
	Value int64 `json:"value"`
	Max   int64 `json:"max"`
}

// Snapshot is a consistent-enough copy of every instrument (individual
// instruments are read atomically; the set is read under the registry
// lock).
type Snapshot struct {
	Counters   map[string]int64         `json:"counters,omitempty"`
	Gauges     map[string]GaugeSnapshot `json:"gauges,omitempty"`
	Histograms map[string]HistSnapshot  `json:"histograms,omitempty"`
}

// Snapshot captures every instrument's current state.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]GaugeSnapshot, len(r.gauges)),
		Histograms: make(map[string]HistSnapshot, len(r.hists)),
	}
	for k, c := range r.counters {
		s.Counters[k] = c.Value()
	}
	for k, g := range r.gauges {
		s.Gauges[k] = GaugeSnapshot{Value: g.Value(), Max: g.Max()}
	}
	for k, h := range r.hists {
		s.Histograms[k] = h.Snapshot()
	}
	return s
}

// WriteText dumps the registry in the stable text format served by the
// colza-admin metrics RPC and printed by `colza-ctl metrics`.
func (r *Registry) WriteText(w io.Writer) error { return r.Snapshot().WriteText(w) }

// looksLikeDuration reports whether a metric name records nanoseconds, so
// the text dump can render human-readable quantiles next to the raw value.
func looksLikeDuration(key string) bool {
	return strings.HasPrefix(key, "span.") || strings.Contains(key, "latency") || strings.Contains(key, "dispatch")
}

// WriteText renders the snapshot as sorted, one-instrument-per-line text:
//
//	counter mercury.call.count{rpc=colza::stage} 42
//	gauge   margo.handlers.inflight 0 max=7
//	hist    span.stage{pipeline=viz} count=42 p50=1.2ms p95=3.4ms p99=5ms
func (s Snapshot) WriteText(w io.Writer) error {
	keys := make([]string, 0, len(s.Counters))
	for k := range s.Counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if _, err := fmt.Fprintf(w, "counter %s %d\n", k, s.Counters[k]); err != nil {
			return err
		}
	}
	keys = keys[:0]
	for k := range s.Gauges {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		g := s.Gauges[k]
		if _, err := fmt.Fprintf(w, "gauge %s %d max=%d\n", k, g.Value, g.Max); err != nil {
			return err
		}
	}
	keys = keys[:0]
	for k := range s.Histograms {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		h := s.Histograms[k]
		q50, q95, q99 := h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99)
		var err error
		if looksLikeDuration(k) {
			_, err = fmt.Fprintf(w, "hist %s count=%d p50=%v p95=%v p99=%v\n",
				k, h.Count, time.Duration(q50), time.Duration(q95), time.Duration(q99))
		} else {
			_, err = fmt.Fprintf(w, "hist %s count=%d p50=%.0f p95=%.0f p99=%.0f\n",
				k, h.Count, q50, q95, q99)
		}
		if err != nil {
			return err
		}
	}
	return nil
}
