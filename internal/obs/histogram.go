package obs

import (
	"math/bits"
	"sync/atomic"
)

// histBuckets is the bucket count: bucket 0 holds values <= 0, bucket i
// (1..64) holds values v with 2^(i-1) <= v < 2^i. Power-of-two bucketing
// keeps Observe lock-free (one atomic add) while bounding quantile error
// to a factor of two — ample for the latency distributions the paper
// reports (p50/p95/p99 at millisecond scales).
const histBuckets = 65

// Histogram is a lock-free latency/size histogram over int64 values
// (nanoseconds for latencies, bytes for sizes). The zero value is ready to
// use.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketOf(v)].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Snapshot copies the histogram's state for quantile math and merging.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v)) // 1..63 for positive int64
}

// bucketBounds returns the half-open value interval [lo, hi) covered by
// bucket i.
func bucketBounds(i int) (lo, hi float64) {
	if i <= 0 {
		return 0, 1
	}
	return float64(int64(1) << (i - 1)), float64(int64(1) << i)
}

// HistSnapshot is an immutable copy of a histogram, the unit of merging
// and percentile math.
type HistSnapshot struct {
	Count   int64              `json:"count"`
	Sum     int64              `json:"sum"`
	Buckets [histBuckets]int64 `json:"buckets"`
}

// Merge returns the snapshot combining s and o — exactly the histogram
// that would have observed both value streams.
func (s HistSnapshot) Merge(o HistSnapshot) HistSnapshot {
	out := HistSnapshot{Count: s.Count + o.Count, Sum: s.Sum + o.Sum}
	for i := range s.Buckets {
		out.Buckets[i] = s.Buckets[i] + o.Buckets[i]
	}
	return out
}

// Mean returns the arithmetic mean, or 0 with no observations.
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile estimates the q-quantile (q in [0, 1]) by locating the bucket
// holding the target rank and interpolating linearly within its bounds.
// With no observations it returns 0.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(s.Count)
	if target < 1 {
		target = 1
	}
	var cum float64
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		prev := cum
		cum += float64(n)
		if cum >= target {
			lo, hi := bucketBounds(i)
			frac := (target - prev) / float64(n)
			return lo + (hi-lo)*frac
		}
	}
	_, hi := bucketBounds(histBuckets - 1)
	return hi
}
