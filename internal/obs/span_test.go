package obs

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// fakeClock is an advanceable virtual clock, the same shape dessim provides.
type fakeClock struct{ now time.Duration }

func (f *fakeClock) clock() Clock { return func() time.Duration { return f.now } }

func TestSpanLifecycle(t *testing.T) {
	fc := &fakeClock{}
	r := NewRegistry()
	r.SetClock(fc.clock())

	sp := r.StartSpan("stage", SpanKey{Pipeline: "viz", Iteration: 3, Rank: 1})
	fc.now = 5 * time.Millisecond
	if dur := sp.End(nil); dur != 5*time.Millisecond {
		t.Fatalf("dur = %v, want 5ms", dur)
	}

	sp = r.StartSpan("stage", SpanKey{Pipeline: "viz", Iteration: 4, Rank: 1})
	fc.now += 7 * time.Millisecond
	sp.End(errors.New("dropped"))

	h := r.Histogram("span.stage", "pipeline", "viz").Snapshot()
	if h.Count != 2 {
		t.Fatalf("span histogram count = %d, want 2", h.Count)
	}
	if got := r.Counter("span.stage.errors", "pipeline", "viz").Value(); got != 1 {
		t.Fatalf("error counter = %d, want 1", got)
	}

	recs := r.Trace()
	if len(recs) != 2 {
		t.Fatalf("trace len = %d, want 2", len(recs))
	}
	if recs[0].Name != "stage" || recs[0].Pipeline != "viz" || recs[0].Iteration != 3 ||
		recs[0].Rank != 1 || recs[0].DurNS != int64(5*time.Millisecond) || recs[0].Err != "" {
		t.Fatalf("first record: %+v", recs[0])
	}
	if recs[1].Err != "dropped" || recs[1].StartNS != int64(5*time.Millisecond) {
		t.Fatalf("second record: %+v", recs[1])
	}
}

func TestSpanNilSafety(t *testing.T) {
	var r *Registry
	sp := r.StartSpan("x", SpanKey{})
	if sp != nil {
		t.Fatal("nil registry should yield nil span")
	}
	if sp.End(nil) != 0 {
		t.Fatal("nil span End should be a no-op")
	}
}

func TestSpanWithoutPipelineLabel(t *testing.T) {
	r := NewRegistry()
	r.StartSpan("activate", SpanKey{Iteration: 1, Rank: -1}).End(nil)
	if r.Histogram("span.activate").Count() != 1 {
		t.Fatal("pipeline-less span should record under the bare name")
	}
}

func TestTraceRingEviction(t *testing.T) {
	r := NewRegistry()
	r.SetTraceCapacity(4)
	for i := uint64(0); i < 10; i++ {
		r.StartSpan("s", SpanKey{Iteration: i}).End(nil)
	}
	recs := r.Trace()
	if len(recs) != 4 {
		t.Fatalf("trace len = %d, want 4", len(recs))
	}
	if recs[0].Iteration != 6 || recs[3].Iteration != 9 {
		t.Fatalf("ring should keep the newest spans: %+v", recs)
	}
	if r.TraceDropped() != 6 {
		t.Fatalf("dropped = %d, want 6", r.TraceDropped())
	}
}

func TestTraceJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.StartSpan("stage", SpanKey{Pipeline: "viz", Iteration: 1, Rank: 0}).End(nil)
	r.StartSpan("execute", SpanKey{Pipeline: "viz", Iteration: 1, Rank: 2}).End(errors.New("boom"))

	var sb strings.Builder
	if err := r.WriteTraceJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(strings.TrimSpace(sb.String()), "\n") + 1; n != 2 {
		t.Fatalf("expected 2 JSON lines, got %d:\n%s", n, sb.String())
	}
	got, err := ParseTraceJSON(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	want := r.Trace()
	if len(got) != len(want) {
		t.Fatalf("round-trip length %d != %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("record %d: %+v != %+v", i, got[i], want[i])
		}
	}
}

func TestVirtualClockSpansAreDeterministic(t *testing.T) {
	run := func() Snapshot {
		fc := &fakeClock{}
		r := NewRegistry()
		r.SetClock(fc.clock())
		for i := uint64(0); i < 50; i++ {
			sp := r.StartSpan("stage", SpanKey{Pipeline: "p", Iteration: i})
			fc.now += time.Duration(i%7+1) * time.Millisecond
			sp.End(nil)
		}
		return r.Snapshot()
	}
	a, b := run(), run()
	if a.Histograms["span.stage{pipeline=p}"] != b.Histograms["span.stage{pipeline=p}"] {
		t.Fatal("virtual-clock histograms must be identical across identical runs")
	}
}
