package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// defaultTraceCap bounds the in-memory trace ring; older spans are dropped
// once it fills (the drop count is kept so consumers can tell).
const defaultTraceCap = 8192

// SpanKey identifies what a span measured: which pipeline, which
// iteration, on which rank. Rank -1 means "the client" (the simulation
// side has no staging rank).
type SpanKey struct {
	Pipeline  string
	Iteration uint64
	Rank      int
}

// SpanRecord is one completed span as stored in the trace and exported as
// a JSON line. Times are offsets from the registry clock's epoch, so
// DES-backed traces carry virtual time.
type SpanRecord struct {
	Name      string `json:"name"`
	Pipeline  string `json:"pipeline,omitempty"`
	Iteration uint64 `json:"iteration"`
	Rank      int    `json:"rank"`
	StartNS   int64  `json:"start_ns"`
	DurNS     int64  `json:"dur_ns"`
	Err       string `json:"err,omitempty"`
}

// Span is an in-progress measurement. End completes it: the duration goes
// into the histogram "span.<name>{pipeline=...}" and the record into the
// trace ring.
type Span struct {
	r     *Registry
	name  string
	key   SpanKey
	start time.Duration
}

// StartSpan begins a span on the registry clock.
func (r *Registry) StartSpan(name string, key SpanKey) *Span {
	if r == nil {
		return nil
	}
	return &Span{r: r, name: name, key: key, start: r.Now()}
}

// End completes the span, recording err (nil for success), and returns
// the measured duration. It is safe on a nil span.
func (s *Span) End(err error) time.Duration {
	if s == nil || s.r == nil {
		return 0
	}
	dur := s.r.Now() - s.start
	if dur < 0 {
		dur = 0
	}
	var labels []string
	if s.key.Pipeline != "" {
		labels = []string{"pipeline", s.key.Pipeline}
	}
	s.r.Histogram("span."+s.name, labels...).Observe(int64(dur))
	rec := SpanRecord{
		Name:      s.name,
		Pipeline:  s.key.Pipeline,
		Iteration: s.key.Iteration,
		Rank:      s.key.Rank,
		StartNS:   int64(s.start),
		DurNS:     int64(dur),
	}
	if err != nil {
		rec.Err = err.Error()
		s.r.Counter("span."+s.name+".errors", labels...).Inc()
	}
	s.r.trace.append(rec)
	return dur
}

// traceBuf is a mutex-guarded ring of completed spans.
type traceBuf struct {
	mu      sync.Mutex
	cap     int
	recs    []SpanRecord
	dropped int64
}

func (t *traceBuf) append(rec SpanRecord) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.cap <= 0 {
		t.cap = defaultTraceCap
	}
	if len(t.recs) >= t.cap {
		n := copy(t.recs, t.recs[1:])
		t.recs = t.recs[:n]
		t.dropped++
	}
	t.recs = append(t.recs, rec)
}

// SetTraceCapacity resizes the trace ring (existing newest records are
// kept). Capacity below 1 is treated as 1.
func (r *Registry) SetTraceCapacity(n int) {
	if n < 1 {
		n = 1
	}
	t := &r.trace
	t.mu.Lock()
	defer t.mu.Unlock()
	t.cap = n
	if len(t.recs) > n {
		t.dropped += int64(len(t.recs) - n)
		t.recs = append([]SpanRecord(nil), t.recs[len(t.recs)-n:]...)
	}
}

// Trace returns a copy of the retained spans in completion order.
func (r *Registry) Trace() []SpanRecord {
	t := &r.trace
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]SpanRecord(nil), t.recs...)
}

// TraceDropped reports how many spans the ring has evicted.
func (r *Registry) TraceDropped() int64 {
	t := &r.trace
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// WriteTraceJSON exports the trace as JSON lines (one SpanRecord per
// line), the structured format internal/bench and the e2e chaos suite
// consume to assert timing-shaped invariants.
func (r *Registry) WriteTraceJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, rec := range r.Trace() {
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return nil
}

// ParseTraceJSON reverses WriteTraceJSON.
func ParseTraceJSON(rd io.Reader) ([]SpanRecord, error) {
	dec := json.NewDecoder(rd)
	var out []SpanRecord
	for dec.More() {
		var rec SpanRecord
		if err := dec.Decode(&rec); err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
	return out, nil
}
