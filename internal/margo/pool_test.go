package margo

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"colza/internal/mercury"
	"colza/internal/na"
	"colza/internal/obs"
)

// TestPoolBoundsConcurrency: with W workers, at most W handlers run at
// once regardless of how many requests are admitted.
func TestPoolBoundsConcurrency(t *testing.T) {
	m1, m2 := twoInstances(t)
	reg := obs.NewRegistry()
	m2.SetObserver(reg)
	p := m2.DefinePool("data", PoolConfig{Workers: 2, Queue: 32})

	var inflight, peak atomic.Int64
	release := make(chan struct{})
	m2.RegisterProviderRPCOnPool("t", "work", p, func(req mercury.Request) ([]byte, error) {
		cur := inflight.Add(1)
		for {
			old := peak.Load()
			if cur <= old || peak.CompareAndSwap(old, cur) {
				break
			}
		}
		<-release
		inflight.Add(-1)
		return nil, nil
	})

	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = m1.CallProvider(m2.Addr(), "t", "work", nil, 5*time.Second)
		}(i)
	}
	// Wait until both workers are occupied, then let everything finish.
	deadline := time.Now().Add(2 * time.Second)
	for inflight.Load() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if got := peak.Load(); got > 2 {
		t.Fatalf("peak concurrency %d, want <= 2 workers", got)
	}
	if got := reg.Gauge("margo.pool.busy", "pool", "data").Max(); got > 2 {
		t.Fatalf("margo.pool.busy max = %d, want <= 2", got)
	}
}

// TestPoolShedsWhenFull: once workers and queue are saturated, further
// requests come back busy immediately (no blocking, no silent drop), and
// the shed counter records each one.
func TestPoolShedsWhenFull(t *testing.T) {
	m1, m2 := twoInstances(t)
	reg := obs.NewRegistry()
	m2.SetObserver(reg)
	p := m2.DefinePool("data", PoolConfig{Workers: 1, Queue: 1, BusyHint: 3 * time.Millisecond})

	started := make(chan struct{}, 16)
	release := make(chan struct{})
	m2.RegisterProviderRPCOnPool("t", "work", p, func(req mercury.Request) ([]byte, error) {
		started <- struct{}{}
		<-release
		return nil, nil
	})

	// Occupy the single worker...
	res := make(chan error, 2)
	go func() {
		_, err := m1.CallProvider(m2.Addr(), "t", "work", nil, 5*time.Second)
		res <- err
	}()
	<-started
	// ...and the single queue slot (poll: the admitted call's enqueue is
	// asynchronous from this goroutine's perspective).
	go func() {
		_, err := m1.CallProvider(m2.Addr(), "t", "work", nil, 5*time.Second)
		res <- err
	}()
	depth := reg.Gauge("margo.pool.queue.depth", "pool", "data")
	deadline := time.Now().Add(2 * time.Second)
	for depth.Value() < 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if depth.Value() != 1 {
		t.Fatalf("queue depth = %d, want 1", depth.Value())
	}

	// The pool is now full: worker busy + queue occupied. This one sheds.
	_, err := m1.CallProvider(m2.Addr(), "t", "work", nil, 5*time.Second)
	if !errors.Is(err, mercury.ErrBusy) {
		t.Fatalf("saturated call: err = %v, want ErrBusy", err)
	}
	var be *mercury.BusyError
	if !errors.As(err, &be) || be.RetryAfter != 3*time.Millisecond {
		t.Fatalf("busy error = %#v, want RetryAfter 3ms", err)
	}
	if got := reg.Counter("margo.pool.shed", "pool", "data").Value(); got != 1 {
		t.Fatalf("margo.pool.shed = %d, want 1", got)
	}

	close(release)
	for i := 0; i < 2; i++ {
		if err := <-res; err != nil {
			t.Fatalf("admitted call failed: %v", err)
		}
	}
	if got := reg.Histogram("margo.pool.wait", "pool", "data").Count(); got < 2 {
		t.Fatalf("margo.pool.wait count = %d, want >= 2", got)
	}
}

// TestPoolUnboundRPCsUnaffected: an RPC not bound to any pool keeps the
// spawn-per-request path even when pools exist and are saturated.
func TestPoolUnboundRPCsUnaffected(t *testing.T) {
	m1, m2 := twoInstances(t)
	p := m2.DefinePool("data", PoolConfig{Workers: 1, Queue: 4})

	release := make(chan struct{})
	started := make(chan struct{})
	m2.RegisterProviderRPCOnPool("t", "slow", p, func(req mercury.Request) ([]byte, error) {
		close(started)
		<-release
		return nil, nil
	})
	m2.RegisterProviderRPC("t", "fast", func(req mercury.Request) ([]byte, error) {
		return []byte("ok"), nil
	})
	defer close(release)

	go m1.CallProvider(m2.Addr(), "t", "slow", nil, 5*time.Second)
	<-started
	out, err := m1.CallProvider(m2.Addr(), "t", "fast", nil, 2*time.Second)
	if err != nil || string(out) != "ok" {
		t.Fatalf("unbound rpc while pool busy: out=%q err=%v", out, err)
	}
}

// TestPoolDrainOnFinalize: admitted tasks run to completion during
// Finalize — queue admission is a promise of execution.
func TestPoolDrainOnFinalize(t *testing.T) {
	net := na.NewInprocNetwork()
	e, err := net.Listen("drain")
	if err != nil {
		t.Fatal(err)
	}
	m := NewInstance(e)
	p := m.DefinePool("data", PoolConfig{Workers: 1, Queue: 4})
	var ran atomic.Int64
	for i := 0; i < 3; i++ {
		if err := p.trySubmit(func() { ran.Add(1) }); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	m.Finalize()
	if got := ran.Load(); got != 3 {
		t.Fatalf("ran %d admitted tasks, want 3", got)
	}
	// After close, submissions shed instead of deadlocking.
	if err := p.trySubmit(func() {}); !errors.Is(err, mercury.ErrBusy) {
		t.Fatalf("post-close submit: err = %v, want ErrBusy", err)
	}
}

// TestDefinePoolIdempotent: same name returns the same pool.
func TestDefinePoolIdempotent(t *testing.T) {
	net := na.NewInprocNetwork()
	e, err := net.Listen("idem")
	if err != nil {
		t.Fatal(err)
	}
	m := NewInstance(e)
	defer m.Finalize()
	a := m.DefinePool("x", PoolConfig{Workers: 1})
	b := m.DefinePool("x", PoolConfig{Workers: 9})
	if a != b {
		t.Fatal("DefinePool with same name returned different pools")
	}
	if m.Pool("x") != a {
		t.Fatal("Pool lookup mismatch")
	}
	if m.Pool("missing") != nil {
		t.Fatal("unknown pool should be nil")
	}
	if got := a.Config().Workers; got != 1 {
		t.Fatalf("config workers = %d, want first definition's 1", got)
	}
}
