package margo

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"colza/internal/mercury"
	"colza/internal/na"
)

func twoInstances(t *testing.T) (*Instance, *Instance) {
	t.Helper()
	net := na.NewInprocNetwork()
	e1, err := net.Listen("m1")
	if err != nil {
		t.Fatal(err)
	}
	e2, err := net.Listen("m2")
	if err != nil {
		t.Fatal(err)
	}
	m1, m2 := NewInstance(e1), NewInstance(e2)
	t.Cleanup(func() { m1.Finalize(); m2.Finalize() })
	return m1, m2
}

func TestProviderRPCMultiplexing(t *testing.T) {
	m1, m2 := twoInstances(t)
	m2.RegisterProviderRPC("colza", "hello", func(req mercury.Request) ([]byte, error) {
		return []byte("from-colza"), nil
	})
	m2.RegisterProviderRPC("admin", "hello", func(req mercury.Request) ([]byte, error) {
		return []byte("from-admin"), nil
	})
	out, err := m1.CallProvider(m2.Addr(), "colza", "hello", nil, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "from-colza" {
		t.Fatalf("out = %q", out)
	}
	out, err = m1.CallProvider(m2.Addr(), "admin", "hello", nil, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "from-admin" {
		t.Fatalf("out = %q", out)
	}
	if _, err := m1.CallProvider(m2.Addr(), "ghost", "hello", nil, time.Second); !errors.Is(err, mercury.ErrUnknownRPC) {
		t.Fatalf("err = %v, want ErrUnknownRPC", err)
	}
}

func TestPeriodicRunsAndStops(t *testing.T) {
	m1, _ := twoInstances(t)
	var n atomic.Int32
	stop := m1.Periodic(5*time.Millisecond, func() { n.Add(1) })
	time.Sleep(60 * time.Millisecond)
	stop()
	got := n.Load()
	if got < 3 {
		t.Fatalf("periodic ran %d times, want >= 3", got)
	}
	time.Sleep(30 * time.Millisecond)
	if after := n.Load(); after > got+1 {
		t.Fatalf("periodic kept running after stop: %d -> %d", got, after)
	}
	stop() // idempotent
}

func TestFinalizeStopsPeriodicsAndRunsCallbacksLIFO(t *testing.T) {
	net := na.NewInprocNetwork()
	ep, _ := net.Listen("fin")
	m := NewInstance(ep)
	var order []string
	m.OnFinalize(func() { order = append(order, "first-registered") })
	m.OnFinalize(func() { order = append(order, "second-registered") })
	var ticks atomic.Int32
	m.Periodic(time.Millisecond, func() { ticks.Add(1) })
	time.Sleep(20 * time.Millisecond)
	m.Finalize()
	if !m.Finalized() {
		t.Fatal("Finalized() = false")
	}
	if len(order) != 2 || order[0] != "second-registered" || order[1] != "first-registered" {
		t.Fatalf("callback order = %v, want LIFO", order)
	}
	before := ticks.Load()
	time.Sleep(20 * time.Millisecond)
	if ticks.Load() != before {
		t.Fatal("periodic survived Finalize")
	}
	m.Finalize() // idempotent
}

func TestPeriodicAfterFinalizeIsNoop(t *testing.T) {
	net := na.NewInprocNetwork()
	ep, _ := net.Listen("nf")
	m := NewInstance(ep)
	m.Finalize()
	var n atomic.Int32
	stop := m.Periodic(time.Millisecond, func() { n.Add(1) })
	time.Sleep(15 * time.Millisecond)
	stop()
	if n.Load() != 0 {
		t.Fatal("periodic ran on finalized instance")
	}
}
