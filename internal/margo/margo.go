// Package margo is the service runtime binding the RPC layer to
// lightweight tasking, modeled on Margo from the Mochi suite (which binds
// Mercury to Argobots). Goroutines stand in for Argobots user-level
// threads: like ULTs blocking on MoNA communication, a goroutine blocked in
// an RPC or collective yields the processor to other tasks instead of
// wasting a core — the property the paper calls out as MoNA's first
// advantage over MPI.
//
// An Instance owns one endpoint, its Mercury class, provider-qualified RPC
// registration, periodic tasks (used by the SWIM gossip loop), and ordered
// finalization callbacks.
package margo

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"colza/internal/mercury"
	"colza/internal/na"
	"colza/internal/obs"
)

// Instance is one simulated service process: endpoint + RPC + tasking.
type Instance struct {
	class *mercury.Class

	obsReg atomic.Pointer[obs.Registry]

	// Execution streams (see pool.go): named bounded pools plus the RPC
	// routing table the dispatcher consults on every incoming request.
	pmu     sync.RWMutex
	pools   map[string]*Pool
	rpcPool map[string]*Pool

	mu        sync.Mutex
	finalized bool
	stops     []*stopper
	onFinal   []func()
	wg        sync.WaitGroup
}

// NewInstance wraps an endpoint into a running service instance.
func NewInstance(ep na.Endpoint) *Instance {
	return &Instance{class: mercury.New(ep)}
}

// Class exposes the underlying Mercury class for direct RPC and bulk use.
func (m *Instance) Class() *mercury.Class { return m.class }

// SetObserver routes the instance's metrics (and the underlying class's RPC
// metrics) into r instead of the process default registry.
func (m *Instance) SetObserver(r *obs.Registry) {
	if r == nil {
		return
	}
	m.obsReg.Store(r)
	m.class.SetObserver(r)
}

func (m *Instance) observer() *obs.Registry {
	if r := m.obsReg.Load(); r != nil {
		return r
	}
	return obs.Default()
}

// Addr returns the instance address.
func (m *Instance) Addr() string { return m.class.Addr() }

// ProviderRPCName builds the wire name of a provider-qualified RPC, the
// analog of Margo's (rpc id, provider id) multiplexing.
func ProviderRPCName(provider, rpc string) string {
	return provider + "::" + rpc
}

// RegisterProviderRPC installs a handler for rpc under the given provider
// name. The handler is wrapped to record the instance's execution-stream
// depth (how many provider handlers run concurrently, the analog of an
// Argobots pool's queue depth) and per-handler dispatch latency.
func (m *Instance) RegisterProviderRPC(provider, rpc string, h mercury.Handler) {
	name := ProviderRPCName(provider, rpc)
	m.class.Register(name, func(req mercury.Request) ([]byte, error) {
		reg := m.observer()
		reg.Gauge("margo.handlers.inflight").Inc()
		start := reg.Now()
		defer func() {
			reg.Histogram("margo.dispatch.latency", "rpc", name).Observe(int64(reg.Now() - start))
			reg.Gauge("margo.handlers.inflight").Dec()
		}()
		return h(req)
	})
}

// CallProvider invokes a provider-qualified RPC at addr.
func (m *Instance) CallProvider(addr, provider, rpc string, payload []byte, timeout time.Duration) ([]byte, error) {
	return m.class.Call(addr, ProviderRPCName(provider, rpc), payload, timeout)
}

// SetCallHook installs a fault-injection hook on outgoing calls (hook names
// are fully qualified, e.g. "colza::prepare"); nil removes it. Chaos tests
// use it to fail or delay specific control-plane RPCs from one instance.
func (m *Instance) SetCallHook(h mercury.CallHook) { m.class.SetCallHook(h) }

// SetServeHook installs a fault-injection hook on incoming requests; nil
// removes it.
func (m *Instance) SetServeHook(h mercury.ServeHook) { m.class.SetServeHook(h) }

// Periodic starts a background task running fn every interval until the
// returned stop function is called or the instance finalizes. The first
// run happens after one interval.
func (m *Instance) Periodic(interval time.Duration, fn func()) (stop func()) {
	if interval <= 0 {
		interval = time.Millisecond
	}
	st := &stopper{ch: make(chan struct{})}
	m.mu.Lock()
	if m.finalized {
		m.mu.Unlock()
		return func() {}
	}
	m.stops = append(m.stops, st)
	m.wg.Add(1)
	m.mu.Unlock()
	tasks := m.observer().Gauge("margo.periodic.tasks")
	tasks.Inc()
	go func() {
		defer m.wg.Done()
		defer tasks.Dec()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-st.ch:
				return
			case <-t.C:
				fn()
			}
		}
	}()
	return st.stop
}

// stopper makes stopping a periodic task idempotent between the caller's
// stop function and Finalize.
type stopper struct {
	ch   chan struct{}
	once sync.Once
}

func (s *stopper) stop() { s.once.Do(func() { close(s.ch) }) }

// OnFinalize registers fn to run during Finalize, before the endpoint
// closes, in reverse registration order (like Margo's finalize callbacks).
func (m *Instance) OnFinalize(fn func()) {
	m.mu.Lock()
	m.onFinal = append(m.onFinal, fn)
	m.mu.Unlock()
}

// Finalize stops periodic tasks, runs finalize callbacks, and closes the
// endpoint. It is idempotent.
func (m *Instance) Finalize() {
	m.mu.Lock()
	if m.finalized {
		m.mu.Unlock()
		return
	}
	m.finalized = true
	stops := m.stops
	m.stops = nil
	final := m.onFinal
	m.onFinal = nil
	m.mu.Unlock()
	for _, st := range stops {
		st.stop()
	}
	m.wg.Wait()
	for i := len(final) - 1; i >= 0; i-- {
		final[i]()
	}
	m.class.Close()
	// With the endpoint closed no new work can be admitted; stop the pool
	// workers after they drain what was already accepted (their response
	// sends fail harmlessly against the closed endpoint).
	m.pmu.Lock()
	pools := make([]*Pool, 0, len(m.pools))
	for _, p := range m.pools {
		pools = append(pools, p)
	}
	m.pmu.Unlock()
	for _, p := range pools {
		p.close()
	}
}

// Finalized reports whether Finalize has run.
func (m *Instance) Finalized() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.finalized
}

// String identifies the instance in logs.
func (m *Instance) String() string { return fmt.Sprintf("margo(%s)", m.Addr()) }
