package margo

import (
	"sync"
	"sync/atomic"
	"time"

	"colza/internal/mercury"
)

// This file implements execution streams: named bounded pools the analog of
// Margo binding Mercury handlers to Argobots pools. Each pool owns a fixed
// set of worker goroutines and a bounded queue; an RPC bound to a pool runs
// on one of its workers instead of a fresh goroutine. When the queue is
// full the request is shed at admission with mercury's retryable busy
// status — the server's resource envelope stays fixed no matter how many
// clients push, and producers are told to back off instead of being
// silently absorbed (the Catalyst/ISAAC flow-control argument).

// PoolConfig sizes one execution stream.
type PoolConfig struct {
	// Workers is the number of concurrently running handlers (default 4).
	Workers int
	// Queue is how many admitted requests may wait beyond the running ones
	// (default 2*Workers; negative means no waiting room at all).
	Queue int
	// BusyHint is the Retry-After backoff suggestion carried on shed
	// responses (default 2ms).
	BusyHint time.Duration
}

func (cfg PoolConfig) normalized() PoolConfig {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	switch {
	case cfg.Queue < 0:
		cfg.Queue = 0
	case cfg.Queue == 0:
		cfg.Queue = 2 * cfg.Workers
	}
	if cfg.BusyHint <= 0 {
		cfg.BusyHint = 2 * time.Millisecond
	}
	return cfg
}

// Pool is one bounded execution stream of an Instance.
type Pool struct {
	name string
	m    *Instance
	cfg  PoolConfig

	tasks  chan poolTask
	stop   chan struct{}
	wg     sync.WaitGroup
	closed atomic.Bool
}

type poolTask struct {
	run func()
	enq time.Duration // observer clock at admission, for queue-wait latency
}

// DefinePool creates (or returns, if the name is taken) a bounded pool and
// starts its workers. Defining any pool installs the instance's dispatcher
// on the Mercury class; RPCs are then routed to pools by BindRPCPool, and
// unbound RPCs keep the historic one-goroutine-per-request behavior.
func (m *Instance) DefinePool(name string, cfg PoolConfig) *Pool {
	cfg = cfg.normalized()
	m.pmu.Lock()
	if m.pools == nil {
		m.pools = make(map[string]*Pool)
		m.rpcPool = make(map[string]*Pool)
	}
	if p, ok := m.pools[name]; ok {
		m.pmu.Unlock()
		return p
	}
	p := &Pool{
		name:  name,
		m:     m,
		cfg:   cfg,
		tasks: make(chan poolTask, cfg.Queue),
		stop:  make(chan struct{}),
	}
	m.pools[name] = p
	first := len(m.pools) == 1
	m.pmu.Unlock()
	m.observer().Gauge("margo.pool.workers", "pool", name).Set(int64(cfg.Workers))
	for i := 0; i < cfg.Workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	if first {
		m.class.SetDispatcher(m.dispatch)
	}
	return p
}

// Pool returns a pool by name, or nil.
func (m *Instance) Pool(name string) *Pool {
	m.pmu.RLock()
	defer m.pmu.RUnlock()
	return m.pools[name]
}

// BindRPCPool routes the fully qualified RPC name (see ProviderRPCName)
// onto p. A nil pool removes the binding.
func (m *Instance) BindRPCPool(rpcName string, p *Pool) {
	m.pmu.Lock()
	if m.rpcPool == nil {
		m.rpcPool = make(map[string]*Pool)
	}
	if p == nil {
		delete(m.rpcPool, rpcName)
	} else {
		m.rpcPool[rpcName] = p
	}
	m.pmu.Unlock()
}

// RegisterProviderRPCOnPool registers the handler and binds it to p in one
// step — per-RPC pool assignment at registration time.
func (m *Instance) RegisterProviderRPCOnPool(provider, rpc string, p *Pool, h mercury.Handler) {
	m.RegisterProviderRPC(provider, rpc, h)
	if p != nil {
		m.BindRPCPool(ProviderRPCName(provider, rpc), p)
	}
}

// dispatch is the mercury.Dispatcher: route bound RPCs to their pool,
// spawn everything else (responses never come here; internal RPCs like the
// bulk-pull service stay unbounded — their concurrency is already bounded
// by the pooled handlers that drive them).
func (m *Instance) dispatch(name string, run func()) error {
	m.pmu.RLock()
	p := m.rpcPool[name]
	m.pmu.RUnlock()
	if p == nil {
		go run()
		return nil
	}
	return p.trySubmit(run)
}

// Name returns the pool name.
func (p *Pool) Name() string { return p.name }

// Config returns the normalized pool sizing.
func (p *Pool) Config() PoolConfig { return p.cfg }

// trySubmit admits run into the queue or sheds it with a retryable busy
// error. Never blocks: admission control happens here, on the progress
// loop, so a full pool costs the caller one round trip, not a goroutine.
func (p *Pool) trySubmit(run func()) error {
	reg := p.m.observer()
	if p.closed.Load() {
		reg.Counter("margo.pool.shed", "pool", p.name).Inc()
		return &mercury.BusyError{RetryAfter: p.cfg.BusyHint}
	}
	select {
	case p.tasks <- poolTask{run: run, enq: reg.Now()}:
		reg.Gauge("margo.pool.queue.depth", "pool", p.name).Inc()
		return nil
	default:
		reg.Counter("margo.pool.shed", "pool", p.name).Inc()
		return &mercury.BusyError{RetryAfter: p.cfg.BusyHint}
	}
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for {
		select {
		case <-p.stop:
			// Drain admitted work before exiting: a request that made it
			// into the queue was promised execution, never a silent drop.
			for {
				select {
				case t := <-p.tasks:
					p.runTask(t)
				default:
					return
				}
			}
		case t := <-p.tasks:
			p.runTask(t)
		}
	}
}

func (p *Pool) runTask(t poolTask) {
	reg := p.m.observer()
	reg.Gauge("margo.pool.queue.depth", "pool", p.name).Dec()
	reg.Histogram("margo.pool.wait", "pool", p.name).Observe(int64(reg.Now() - t.enq))
	busy := reg.Gauge("margo.pool.busy", "pool", p.name)
	busy.Inc()
	t.run()
	busy.Dec()
}

// close stops the workers after the current (and queued) tasks finish.
func (p *Pool) close() {
	if p.closed.Swap(true) {
		return
	}
	close(p.stop)
	p.wg.Wait()
}
