// Package vtk implements the minimal VTK-like data model and filters the
// Colza pipelines need: regular grids (ImageData), unstructured grids,
// named data arrays, isosurface extraction, plane clipping, and block
// merging — plus the vtkMultiProcessController-style parallel controller
// abstraction whose dependency injection is what let the paper swap MPI
// for MoNA without touching the filters.
package vtk

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ErrDecode reports malformed serialized data.
var ErrDecode = errors.New("vtk: malformed serialized dataset")

// DataArray is a named array of float32 tuples (VTK's vtkDataArray).
type DataArray struct {
	Name       string
	Components int
	Data       []float32
}

// NewDataArray allocates an array of n tuples with comps components each.
func NewDataArray(name string, comps, n int) *DataArray {
	if comps < 1 {
		comps = 1
	}
	return &DataArray{Name: name, Components: comps, Data: make([]float32, comps*n)}
}

// NumTuples returns the tuple count.
func (a *DataArray) NumTuples() int {
	if a.Components == 0 {
		return 0
	}
	return len(a.Data) / a.Components
}

// Range returns the (min, max) over all components; (0, 0) for empty.
func (a *DataArray) Range() (float32, float32) {
	if len(a.Data) == 0 {
		return 0, 0
	}
	lo, hi := float32(math.Inf(1)), float32(math.Inf(-1))
	for _, v := range a.Data {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// EncodedSize returns the exact number of bytes encodeArray appends, so
// staging paths can encode into a single exactly-sized (often pooled)
// buffer instead of growing through appends.
func (a *DataArray) EncodedSize() int {
	return 12 + len(a.Name) + 4*len(a.Data)
}

// arraysEncodedSize is the exact size of encodeArrays' output, including
// the leading count.
func arraysEncodedSize(arrays []*DataArray) int {
	n := 4
	for _, a := range arrays {
		n += a.EncodedSize()
	}
	return n
}

// encodeArray serializes a DataArray.
func encodeArray(buf []byte, a *DataArray) []byte {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], uint32(len(a.Name)))
	buf = append(buf, tmp[:]...)
	buf = append(buf, a.Name...)
	binary.LittleEndian.PutUint32(tmp[:], uint32(a.Components))
	buf = append(buf, tmp[:]...)
	binary.LittleEndian.PutUint32(tmp[:], uint32(len(a.Data)))
	buf = append(buf, tmp[:]...)
	for _, v := range a.Data {
		binary.LittleEndian.PutUint32(tmp[:], math.Float32bits(v))
		buf = append(buf, tmp[:]...)
	}
	return buf
}

func decodeArray(data []byte) (*DataArray, []byte, error) {
	if len(data) < 4 {
		return nil, nil, ErrDecode
	}
	nl := int(binary.LittleEndian.Uint32(data))
	data = data[4:]
	if nl < 0 || len(data) < nl+8 {
		return nil, nil, ErrDecode
	}
	a := &DataArray{Name: string(data[:nl])}
	data = data[nl:]
	a.Components = int(binary.LittleEndian.Uint32(data))
	n := int(binary.LittleEndian.Uint32(data[4:]))
	data = data[8:]
	if a.Components < 1 || n < 0 || len(data) < 4*n {
		return nil, nil, ErrDecode
	}
	a.Data = make([]float32, n)
	for i := range a.Data {
		a.Data[i] = math.Float32frombits(binary.LittleEndian.Uint32(data[4*i:]))
	}
	return a, data[4*n:], nil
}

func encodeArrays(buf []byte, arrays []*DataArray) []byte {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], uint32(len(arrays)))
	buf = append(buf, tmp[:]...)
	for _, a := range arrays {
		buf = encodeArray(buf, a)
	}
	return buf
}

func decodeArrays(data []byte) ([]*DataArray, []byte, error) {
	if len(data) < 4 {
		return nil, nil, ErrDecode
	}
	n := int(binary.LittleEndian.Uint32(data))
	data = data[4:]
	if n < 0 || n > 1<<20 {
		return nil, nil, ErrDecode
	}
	out := make([]*DataArray, 0, n)
	for i := 0; i < n; i++ {
		a, rest, err := decodeArray(data)
		if err != nil {
			return nil, nil, err
		}
		out = append(out, a)
		data = rest
	}
	return out, data, nil
}

// findArray looks an array up by name.
func findArray(arrays []*DataArray, name string) (*DataArray, error) {
	for _, a := range arrays {
		if a.Name == name {
			return a, nil
		}
	}
	return nil, fmt.Errorf("vtk: no array named %q", name)
}
