package vtk

import (
	"encoding/binary"
	"math"
)

func floatBits(v float32) uint32     { return math.Float32bits(v) }
func floatFromBits(b uint32) float32 { return math.Float32frombits(b) }

// TriangleMesh is the output of surface filters (VTK's vtkPolyData with
// triangle cells): flat triangle soup with per-vertex normals and scalars.
// Every consecutive triple of vertices is one triangle.
type TriangleMesh struct {
	Positions []float32 // xyz per vertex
	Normals   []float32 // xyz per vertex
	Scalars   []float32 // one per vertex
}

// NumTriangles returns the triangle count.
func (m *TriangleMesh) NumTriangles() int { return len(m.Positions) / 9 }

// NumVertices returns the vertex count.
func (m *TriangleMesh) NumVertices() int { return len(m.Positions) / 3 }

// AddTriangle appends one triangle with per-vertex scalars; the facet
// normal is computed and shared by the three vertices.
func (m *TriangleMesh) AddTriangle(p0, p1, p2 [3]float32, s0, s1, s2 float32) {
	ux, uy, uz := p1[0]-p0[0], p1[1]-p0[1], p1[2]-p0[2]
	vx, vy, vz := p2[0]-p0[0], p2[1]-p0[1], p2[2]-p0[2]
	nx, ny, nz := uy*vz-uz*vy, uz*vx-ux*vz, ux*vy-uy*vx
	l := float32(math.Sqrt(float64(nx*nx + ny*ny + nz*nz)))
	if l > 0 {
		nx, ny, nz = nx/l, ny/l, nz/l
	}
	for _, p := range [][3]float32{p0, p1, p2} {
		m.Positions = append(m.Positions, p[0], p[1], p[2])
		m.Normals = append(m.Normals, nx, ny, nz)
	}
	m.Scalars = append(m.Scalars, s0, s1, s2)
}

// Bounds returns the axis-aligned bounding box (min, max); zero boxes for
// empty meshes.
func (m *TriangleMesh) Bounds() ([3]float32, [3]float32) {
	var lo, hi [3]float32
	if len(m.Positions) == 0 {
		return lo, hi
	}
	for k := 0; k < 3; k++ {
		lo[k] = float32(math.Inf(1))
		hi[k] = float32(math.Inf(-1))
	}
	for i := 0; i+2 < len(m.Positions); i += 3 {
		for k := 0; k < 3; k++ {
			v := m.Positions[i+k]
			if v < lo[k] {
				lo[k] = v
			}
			if v > hi[k] {
				hi[k] = v
			}
		}
	}
	return lo, hi
}

// Append concatenates other into m (the vtkAppendPolyData block-merge).
func (m *TriangleMesh) Append(other *TriangleMesh) {
	m.Positions = append(m.Positions, other.Positions...)
	m.Normals = append(m.Normals, other.Normals...)
	m.Scalars = append(m.Scalars, other.Scalars...)
}

// Encode serializes the mesh.
func (m *TriangleMesh) Encode() []byte {
	var tmp [4]byte
	buf := make([]byte, 0, 12+4*(len(m.Positions)+len(m.Normals)+len(m.Scalars)))
	emit := func(vals []float32) {
		binary.LittleEndian.PutUint32(tmp[:], uint32(len(vals)))
		buf = append(buf, tmp[:]...)
		for _, v := range vals {
			binary.LittleEndian.PutUint32(tmp[:], floatBits(v))
			buf = append(buf, tmp[:]...)
		}
	}
	emit(m.Positions)
	emit(m.Normals)
	emit(m.Scalars)
	return buf
}

// DecodeTriangleMesh reverses Encode.
func DecodeTriangleMesh(data []byte) (*TriangleMesh, error) {
	m := &TriangleMesh{}
	read := func() ([]float32, bool) {
		if len(data) < 4 {
			return nil, false
		}
		n := int(binary.LittleEndian.Uint32(data))
		data = data[4:]
		if n < 0 || len(data) < 4*n {
			return nil, false
		}
		out := make([]float32, n)
		for i := range out {
			out[i] = floatFromBits(binary.LittleEndian.Uint32(data[4*i:]))
		}
		data = data[4*n:]
		return out, true
	}
	var ok bool
	if m.Positions, ok = read(); !ok {
		return nil, ErrDecode
	}
	if m.Normals, ok = read(); !ok {
		return nil, ErrDecode
	}
	if m.Scalars, ok = read(); !ok {
		return nil, ErrDecode
	}
	if len(m.Positions)%9 != 0 || len(m.Normals) != len(m.Positions) || len(m.Scalars)*3 != len(m.Positions) {
		return nil, ErrDecode
	}
	return m, nil
}
