package vtk

import (
	"bufio"
	"fmt"
	"io"
)

// This file implements writers for the VTK legacy ASCII format, so data
// produced by the simulations and filters in this repository can be opened
// in actual ParaView/VisIt — useful when comparing the proxy pipelines
// against the real tools the paper builds on.

func legacyHeader(w io.Writer, title string) {
	fmt.Fprintf(w, "# vtk DataFile Version 3.0\n%s\nASCII\n", title)
}

func writeArrays(w io.Writer, kind string, n int, arrays []*DataArray) {
	if len(arrays) == 0 {
		return
	}
	fmt.Fprintf(w, "%s %d\n", kind, n)
	for _, a := range arrays {
		comps := a.Components
		if comps < 1 {
			comps = 1
		}
		fmt.Fprintf(w, "SCALARS %s float %d\nLOOKUP_TABLE default\n", a.Name, comps)
		for i, v := range a.Data {
			if i > 0 && i%9 == 0 {
				fmt.Fprintln(w)
			}
			fmt.Fprintf(w, "%g ", v)
		}
		fmt.Fprintln(w)
	}
}

// WriteLegacy writes the grid as a legacy UNSTRUCTURED_GRID dataset.
func (g *UnstructuredGrid) WriteLegacy(out io.Writer, title string) error {
	w := bufio.NewWriter(out)
	legacyHeader(w, title)
	fmt.Fprintln(w, "DATASET UNSTRUCTURED_GRID")
	np := g.NumPoints()
	fmt.Fprintf(w, "POINTS %d float\n", np)
	for i := 0; i < np; i++ {
		fmt.Fprintf(w, "%g %g %g\n", g.Points[3*i], g.Points[3*i+1], g.Points[3*i+2])
	}
	nc := g.NumCells()
	fmt.Fprintf(w, "CELLS %d %d\n", nc, nc+len(g.Conn))
	for c := 0; c < nc; c++ {
		cell := g.Cell(c)
		fmt.Fprintf(w, "%d", len(cell))
		for _, p := range cell {
			fmt.Fprintf(w, " %d", p)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "CELL_TYPES %d\n", nc)
	for _, t := range g.CellTypes {
		fmt.Fprintf(w, "%d\n", int(t))
	}
	writeArrays(w, "POINT_DATA", np, g.PointData)
	writeArrays(w, "CELL_DATA", nc, g.CellData)
	return w.Flush()
}

// WriteLegacy writes the mesh as a legacy POLYDATA dataset of triangles.
func (m *TriangleMesh) WriteLegacy(out io.Writer, title string) error {
	w := bufio.NewWriter(out)
	legacyHeader(w, title)
	fmt.Fprintln(w, "DATASET POLYDATA")
	nv := m.NumVertices()
	fmt.Fprintf(w, "POINTS %d float\n", nv)
	for i := 0; i < nv; i++ {
		fmt.Fprintf(w, "%g %g %g\n", m.Positions[3*i], m.Positions[3*i+1], m.Positions[3*i+2])
	}
	nt := m.NumTriangles()
	fmt.Fprintf(w, "POLYGONS %d %d\n", nt, 4*nt)
	for t := 0; t < nt; t++ {
		fmt.Fprintf(w, "3 %d %d %d\n", 3*t, 3*t+1, 3*t+2)
	}
	fmt.Fprintf(w, "POINT_DATA %d\n", nv)
	fmt.Fprintf(w, "SCALARS scalar float 1\nLOOKUP_TABLE default\n")
	for i, v := range m.Scalars {
		if i > 0 && i%9 == 0 {
			fmt.Fprintln(w)
		}
		fmt.Fprintf(w, "%g ", v)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "NORMALS normals float\n")
	for i := 0; i < nv; i++ {
		fmt.Fprintf(w, "%g %g %g\n", m.Normals[3*i], m.Normals[3*i+1], m.Normals[3*i+2])
	}
	return w.Flush()
}

// WriteLegacy writes the grid as a legacy STRUCTURED_POINTS dataset.
func (img *ImageData) WriteLegacy(out io.Writer, title string) error {
	w := bufio.NewWriter(out)
	legacyHeader(w, title)
	fmt.Fprintln(w, "DATASET STRUCTURED_POINTS")
	fmt.Fprintf(w, "DIMENSIONS %d %d %d\n", img.Dims[0], img.Dims[1], img.Dims[2])
	fmt.Fprintf(w, "ORIGIN %g %g %g\n", img.Origin[0], img.Origin[1], img.Origin[2])
	fmt.Fprintf(w, "SPACING %g %g %g\n", img.Spacing[0], img.Spacing[1], img.Spacing[2])
	writeArrays(w, "POINT_DATA", img.NumPoints(), img.PointData)
	return w.Flush()
}
