package vtk

import (
	"math"
	"testing"
	"testing/quick"
)

// Property: a clipped mesh never has a vertex on the negative side of the
// plane (beyond float tolerance), for arbitrary planes.
func TestQuickClipKeepsPositiveSide(t *testing.T) {
	img := sphereField([3]int{12, 12, 12}, [3]float64{5.5, 5.5, 5.5}, 1)
	mesh, err := Isosurface(img, "dist", 4)
	if err != nil {
		t.Fatal(err)
	}
	f := func(nx, ny, nz int8, off int8) bool {
		n := [3]float32{float32(nx), float32(ny), float32(nz)}
		if n[0] == 0 && n[1] == 0 && n[2] == 0 {
			return true
		}
		pl := Plane{Normal: n, Offset: float32(off)}
		out := ClipMesh(mesh, pl)
		for v := 0; v < out.NumVertices(); v++ {
			p := [3]float32{out.Positions[3*v], out.Positions[3*v+1], out.Positions[3*v+2]}
			if pl.Eval(p) < -1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: marching tetrahedra emits at most 2 triangles per tetrahedron,
// i.e. at most 12 per voxel — a topology bound that catches table bugs.
func TestIsosurfaceTriangleBound(t *testing.T) {
	img := sphereField([3]int{10, 10, 10}, [3]float64{4.5, 4.5, 4.5}, 1)
	for _, iso := range []float64{1, 2.5, 4, 6} {
		mesh, err := Isosurface(img, "dist", iso)
		if err != nil {
			t.Fatal(err)
		}
		maxTris := img.NumCells() * 12
		if mesh.NumTriangles() > maxTris {
			t.Fatalf("iso=%v: %d triangles exceeds bound %d", iso, mesh.NumTriangles(), maxTris)
		}
	}
}

// Isosurface values must be continuous under small iso changes: nearby
// iso levels produce comparable (not wildly different) areas.
func TestIsosurfaceAreaContinuity(t *testing.T) {
	img := sphereField([3]int{14, 14, 14}, [3]float64{6.5, 6.5, 6.5}, 1)
	a1, _ := Isosurface(img, "dist", 4.0)
	a2, _ := Isosurface(img, "dist", 4.05)
	r := meshArea(a2) / meshArea(a1)
	if r < 0.9 || r > 1.15 {
		t.Fatalf("area jumped by %v for a 1%% iso change", r)
	}
}

// Degenerate grids (flat in one axis) produce no cells and no surface.
func TestIsosurfaceDegenerateGrid(t *testing.T) {
	img := NewImageData([3]int{8, 8, 1}, [3]float64{}, [3]float64{1, 1, 1})
	img.AddPointArray("f", 1)
	mesh, err := Isosurface(img, "f", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if mesh.NumTriangles() != 0 {
		t.Fatal("flat grid produced triangles")
	}
	if img.NumCells() != 0 {
		t.Fatalf("flat grid claims %d cells", img.NumCells())
	}
}

// Clip of a clipped mesh with the opposite plane leaves only the band
// between them.
func TestDoubleClipBand(t *testing.T) {
	img := sphereField([3]int{16, 16, 16}, [3]float64{7.5, 7.5, 7.5}, 1)
	mesh, _ := Isosurface(img, "dist", 5)
	band := ClipMesh(
		ClipMesh(mesh, Plane{Normal: [3]float32{1, 0, 0}, Offset: 6}),
		Plane{Normal: [3]float32{-1, 0, 0}, Offset: -9})
	for v := 0; v < band.NumVertices(); v++ {
		x := band.Positions[3*v]
		if x < 6-1e-3 || x > 9+1e-3 {
			t.Fatalf("vertex at x=%f escaped the [6, 9] band", x)
		}
	}
	if band.NumTriangles() == 0 {
		t.Fatal("band clip removed everything")
	}
}

// Property: merging k copies of a grid scales points, cells, and data
// linearly.
func TestQuickMergeLinear(t *testing.T) {
	base := NewUnstructuredGrid()
	p0 := base.AddPoint(0, 0, 0)
	p1 := base.AddPoint(1, 0, 0)
	p2 := base.AddPoint(0, 1, 0)
	p3 := base.AddPoint(0, 0, 1)
	base.AddCell(CellTetra, p0, p1, p2, p3)
	arr := base.AddCellArray("v", 1)
	arr.Data[0] = 3

	f := func(kRaw uint8) bool {
		k := int(kRaw%6) + 1
		grids := make([]*UnstructuredGrid, k)
		for i := range grids {
			grids[i] = base
		}
		m, err := MergeUnstructured(grids...)
		if err != nil {
			return false
		}
		a, _ := m.CellArray("v")
		return m.NumCells() == k && m.NumPoints() == 4*k && len(a.Data) == k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Encoded sizes must grow monotonically with content (sanity for the
// Fig. 1a bytes column).
func TestEncodeSizeMonotone(t *testing.T) {
	small := sphereField([3]int{4, 4, 4}, [3]float64{1.5, 1.5, 1.5}, 1)
	big := sphereField([3]int{8, 8, 8}, [3]float64{3.5, 3.5, 3.5}, 1)
	if len(big.Encode()) <= len(small.Encode()) {
		t.Fatal("bigger grid encoded smaller")
	}
	if math.IsNaN(float64(len(small.Encode()))) {
		t.Fatal("unreachable")
	}
}
