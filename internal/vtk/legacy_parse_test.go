package vtk

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"
)

func sampleImage(dims [3]int, arrays int) *ImageData {
	img := NewImageData(dims, [3]float64{-1, 0.5, 2}, [3]float64{0.25, 1, 3})
	for a := 0; a < arrays; a++ {
		name := string(rune('a' + a))
		da := img.AddPointArray(name, a+1)
		for i := range da.Data {
			da.Data[i] = float32(math.Sin(float64(i*(a+1)))) * 100
		}
	}
	return img
}

func TestLegacyImageDataRoundTrip(t *testing.T) {
	cases := []struct {
		name   string
		dims   [3]int
		arrays int
	}{
		{"no-arrays", [3]int{4, 3, 2}, 0},
		{"one-scalar", [3]int{5, 5, 1}, 1},
		{"multi-array", [3]int{3, 2, 4}, 3},
		{"single-point", [3]int{1, 1, 1}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			img := sampleImage(tc.dims, tc.arrays)
			var buf bytes.Buffer
			if err := img.WriteLegacy(&buf, "round trip"); err != nil {
				t.Fatal(err)
			}
			got, title, err := ParseLegacyImageData(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("parse: %v\n%s", err, buf.String())
			}
			if title != "round trip" {
				t.Fatalf("title %q", title)
			}
			if got.Dims != img.Dims || got.Origin != img.Origin || got.Spacing != img.Spacing {
				t.Fatalf("geometry mismatch: %+v vs %+v", got, img)
			}
			if len(got.PointData) != len(img.PointData) {
				t.Fatalf("%d arrays, want %d", len(got.PointData), len(img.PointData))
			}
			for i, a := range img.PointData {
				g := got.PointData[i]
				if g.Name != a.Name || g.Components != a.Components {
					t.Fatalf("array %d header mismatch: %+v vs %+v", i, g, a)
				}
				for j := range a.Data {
					if g.Data[j] != a.Data[j] {
						t.Fatalf("array %q value %d: %g vs %g", a.Name, j, g.Data[j], a.Data[j])
					}
				}
			}
		})
	}
}

func TestLegacyImageDataMalformed(t *testing.T) {
	valid := func() string {
		var buf bytes.Buffer
		sampleImage([3]int{2, 2, 2}, 1).WriteLegacy(&buf, "t")
		return buf.String()
	}()
	cases := []struct {
		name  string
		input string
	}{
		{"empty", ""},
		{"bad-magic", strings.Replace(valid, "# vtk DataFile", "# not vtk", 1)},
		{"binary-format", strings.Replace(valid, "ASCII", "BINARY", 1)},
		{"wrong-dataset", strings.Replace(valid, "STRUCTURED_POINTS", "POLYDATA", 1)},
		{"zero-dim", strings.Replace(valid, "DIMENSIONS 2 2 2", "DIMENSIONS 0 2 2", 1)},
		{"huge-dim", strings.Replace(valid, "DIMENSIONS 2 2 2", "DIMENSIONS 99999999 99999999 99999999", 1)},
		{"negative-spacing", strings.Replace(valid, "SPACING 0.25 1 3", "SPACING -1 1 3", 1)},
		{"count-mismatch", strings.Replace(valid, "POINT_DATA 8", "POINT_DATA 9", 1)},
		{"bad-value", strings.Replace(valid, "LOOKUP_TABLE default\n", "LOOKUP_TABLE default\nnot-a-number ", 1)},
		{"truncated-values", valid[:len(valid)-20]},
		{"missing-lut", strings.Replace(valid, "LOOKUP_TABLE default\n", "", 1)},
		{"huge-comps", strings.Replace(valid, "SCALARS a float 1", "SCALARS a float 5000", 1)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := ParseLegacyImageData(strings.NewReader(tc.input))
			if err == nil {
				t.Fatalf("malformed input accepted:\n%s", tc.input)
			}
			if !errors.Is(err, ErrParse) {
				t.Fatalf("error %v does not wrap ErrParse", err)
			}
		})
	}
}

// FuzzParseLegacyImageData asserts the parser never panics and that any
// input it accepts re-serializes to something it accepts again with
// identical geometry (parse → write → parse is a fixed point).
func FuzzParseLegacyImageData(f *testing.F) {
	for _, dims := range [][3]int{{1, 1, 1}, {3, 2, 1}, {4, 4, 4}} {
		var buf bytes.Buffer
		sampleImage(dims, 2).WriteLegacy(&buf, "seed")
		f.Add(buf.Bytes())
	}
	f.Add([]byte("# vtk DataFile Version 3.0\nt\nASCII\nDATASET STRUCTURED_POINTS\n"))
	f.Add([]byte("# vtk DataFile Version 3.0\nt\nASCII\nDATASET STRUCTURED_POINTS\n" +
		"DIMENSIONS 2 1 1\nORIGIN 0 0 0\nSPACING 1 1 1\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		img, title, err := ParseLegacyImageData(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := img.WriteLegacy(&buf, title); err != nil {
			t.Fatalf("re-serialize accepted input: %v", err)
		}
		img2, _, err := ParseLegacyImageData(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-parse own output: %v\n%s", err, buf.String())
		}
		if img2.Dims != img.Dims || len(img2.PointData) != len(img.PointData) {
			t.Fatalf("round trip changed shape: %v/%d vs %v/%d",
				img2.Dims, len(img2.PointData), img.Dims, len(img.PointData))
		}
	})
}
