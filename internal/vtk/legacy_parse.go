package vtk

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file implements the reader for the STRUCTURED_POINTS legacy ASCII
// datasets that (*ImageData).WriteLegacy produces, closing the round trip
// so regression tests (and external tools) can feed legacy files back into
// the proxy pipelines. The parser never panics on malformed input: every
// failure surfaces as an error wrapping ErrParse.

// ErrParse reports a malformed legacy VTK file.
var ErrParse = fmt.Errorf("vtk: malformed legacy file")

// parseLimits bound what a legacy file may ask us to allocate, so fuzzed
// inputs cannot OOM the process. Dimensions mirror DecodeImageData's cap;
// the point budget keeps dx*dy*dz (and per-array value counts) small.
const (
	maxLegacyDim    = 1 << 16
	maxLegacyPoints = 1 << 24
	maxLegacyComps  = 64
	maxLegacyArrays = 256
	maxLegacyValues = 1 << 24 // comps*points per array (64 MiB of float32)
)

// legacyScanner tokenizes a legacy ASCII file by whitespace-separated
// words while tracking line structure only where the format requires it.
type legacyScanner struct {
	r *bufio.Reader
}

func parseErr(format string, args ...interface{}) error {
	return fmt.Errorf("%w: %s", ErrParse, fmt.Sprintf(format, args...))
}

// readLine returns the next line with trailing newline trimmed.
func (s *legacyScanner) readLine() (string, error) {
	line, err := s.r.ReadString('\n')
	if err == io.EOF && line != "" {
		return strings.TrimRight(line, "\r\n"), nil
	}
	if err != nil {
		return "", err
	}
	return strings.TrimRight(line, "\r\n"), nil
}

// word returns the next whitespace-separated token, skipping newlines.
func (s *legacyScanner) word() (string, error) {
	var b strings.Builder
	for {
		c, err := s.r.ReadByte()
		if err != nil {
			if b.Len() > 0 {
				return b.String(), nil
			}
			return "", err
		}
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			if b.Len() > 0 {
				return b.String(), nil
			}
			continue
		}
		b.WriteByte(c)
		if b.Len() > 1<<12 {
			return "", parseErr("token too long")
		}
	}
}

func (s *legacyScanner) intWord(what string) (int, error) {
	w, err := s.word()
	if err != nil {
		return 0, parseErr("missing %s", what)
	}
	v, err := strconv.Atoi(w)
	if err != nil {
		return 0, parseErr("bad %s %q", what, w)
	}
	return v, nil
}

func (s *legacyScanner) floatWord(what string) (float64, error) {
	w, err := s.word()
	if err != nil {
		return 0, parseErr("missing %s", what)
	}
	v, err := strconv.ParseFloat(w, 64)
	if err != nil {
		return 0, parseErr("bad %s %q", what, w)
	}
	return v, nil
}

func (s *legacyScanner) triple(keyword string, parse func(string) error) error {
	line, err := s.readLine()
	if err != nil {
		return parseErr("missing %s line", keyword)
	}
	fields := strings.Fields(line)
	if len(fields) != 4 || fields[0] != keyword {
		return parseErr("want %q line, got %q", keyword, line)
	}
	for _, f := range fields[1:] {
		if err := parse(f); err != nil {
			return err
		}
	}
	return nil
}

// ParseLegacyImageData parses a legacy ASCII STRUCTURED_POINTS dataset as
// written by (*ImageData).WriteLegacy. It returns the grid and the file's
// title line. Malformed input yields an error wrapping ErrParse — never a
// panic — and allocations are bounded regardless of what the header claims.
func ParseLegacyImageData(r io.Reader) (*ImageData, string, error) {
	s := &legacyScanner{r: bufio.NewReader(io.LimitReader(r, 1<<28))}

	magic, err := s.readLine()
	if err != nil {
		return nil, "", parseErr("empty input")
	}
	if !strings.HasPrefix(magic, "# vtk DataFile Version ") {
		return nil, "", parseErr("bad magic %q", magic)
	}
	title, err := s.readLine()
	if err != nil {
		return nil, "", parseErr("missing title line")
	}
	format, err := s.readLine()
	if err != nil || strings.TrimSpace(format) != "ASCII" {
		return nil, "", parseErr("want ASCII format, got %q", format)
	}
	dataset, err := s.readLine()
	if err != nil {
		return nil, "", parseErr("missing DATASET line")
	}
	fields := strings.Fields(dataset)
	if len(fields) != 2 || fields[0] != "DATASET" {
		return nil, "", parseErr("bad DATASET line %q", dataset)
	}
	if fields[1] != "STRUCTURED_POINTS" {
		return nil, "", parseErr("unsupported dataset type %q", fields[1])
	}

	img := &ImageData{Spacing: [3]float64{1, 1, 1}}
	di := 0
	if err := s.triple("DIMENSIONS", func(f string) error {
		v, err := strconv.Atoi(f)
		if err != nil || v < 1 || v > maxLegacyDim {
			return parseErr("bad dimension %q", f)
		}
		img.Dims[di] = v
		di++
		return nil
	}); err != nil {
		return nil, "", err
	}
	if img.NumPoints() > maxLegacyPoints {
		return nil, "", parseErr("grid too large: %d points", img.NumPoints())
	}
	fi := 0
	if err := s.triple("ORIGIN", func(f string) error {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return parseErr("bad origin %q", f)
		}
		img.Origin[fi] = v
		fi++
		return nil
	}); err != nil {
		return nil, "", err
	}
	fi = 0
	if err := s.triple("SPACING", func(f string) error {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil || v <= 0 {
			return parseErr("bad spacing %q", f)
		}
		img.Spacing[fi] = v
		fi++
		return nil
	}); err != nil {
		return nil, "", err
	}

	// POINT_DATA is optional: a grid with no arrays ends here.
	kw, err := s.word()
	if err == io.EOF {
		return img, title, nil
	}
	if err != nil {
		return nil, "", parseErr("reading POINT_DATA: %v", err)
	}
	if kw != "POINT_DATA" {
		return nil, "", parseErr("want POINT_DATA, got %q", kw)
	}
	n, err := s.intWord("POINT_DATA count")
	if err != nil {
		return nil, "", err
	}
	if n != img.NumPoints() {
		return nil, "", parseErr("POINT_DATA %d does not match %d grid points", n, img.NumPoints())
	}

	for {
		kw, err := s.word()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, "", parseErr("reading array header: %v", err)
		}
		if kw != "SCALARS" {
			return nil, "", parseErr("want SCALARS, got %q", kw)
		}
		if len(img.PointData) >= maxLegacyArrays {
			return nil, "", parseErr("too many arrays")
		}
		name, err := s.word()
		if err != nil {
			return nil, "", parseErr("missing array name")
		}
		typ, err := s.word()
		if err != nil || typ != "float" {
			return nil, "", parseErr("want float array, got %q", typ)
		}
		comps, err := s.intWord("component count")
		if err != nil {
			return nil, "", err
		}
		if comps < 1 || comps > maxLegacyComps {
			return nil, "", parseErr("bad component count %d", comps)
		}
		if comps*n > maxLegacyValues {
			return nil, "", parseErr("array too large: %d values", comps*n)
		}
		lut, err := s.word()
		if err != nil || lut != "LOOKUP_TABLE" {
			return nil, "", parseErr("want LOOKUP_TABLE, got %q", lut)
		}
		if _, err := s.word(); err != nil {
			return nil, "", parseErr("missing lookup table name")
		}
		a := NewDataArray(name, comps, n)
		for i := range a.Data {
			v, err := s.floatWord("array value")
			if err != nil {
				return nil, "", err
			}
			a.Data[i] = float32(v)
		}
		img.PointData = append(img.PointData, a)
	}
	return img, title, nil
}
