package vtk

// Isosurface extracts the iso-valued surface of a scalar field on a
// regular grid using marching tetrahedra: each voxel is split into six
// tetrahedra and each tetrahedron contributes up to two triangles. The
// result is topologically watertight across voxel and block boundaries
// (shared tetra faces interpolate identically), which is what the
// image-compositing step relies on when blocks are rendered on different
// staging servers.
//
// The paper's pipelines run ParaView's contour filter; marching
// tetrahedra is the table-light equivalent with the same role: an
// embarrassingly parallel, computation-heavy surface extraction.
func Isosurface(img *ImageData, field string, iso float64) (*TriangleMesh, error) {
	arr, err := img.PointArray(field)
	if err != nil {
		return nil, err
	}
	mesh := &TriangleMesh{}
	isoF := float32(iso)
	nx, ny, nz := img.Dims[0], img.Dims[1], img.Dims[2]
	if nx < 2 || ny < 2 || nz < 2 {
		return mesh, nil
	}
	// Cube corner offsets in (i, j, k).
	corners := [8][3]int{
		{0, 0, 0}, {1, 0, 0}, {1, 1, 0}, {0, 1, 0},
		{0, 0, 1}, {1, 0, 1}, {1, 1, 1}, {0, 1, 1},
	}
	// Six tetrahedra around the 0-6 diagonal.
	tets := [6][4]int{
		{0, 5, 1, 6}, {0, 1, 2, 6}, {0, 2, 3, 6},
		{0, 3, 7, 6}, {0, 7, 4, 6}, {0, 4, 5, 6},
	}
	var pos [8][3]float32
	var val [8]float32
	for k := 0; k < nz-1; k++ {
		for j := 0; j < ny-1; j++ {
			for i := 0; i < nx-1; i++ {
				for c, off := range corners {
					idx := img.Index(i+off[0], j+off[1], k+off[2])
					v := arr.Data[idx]
					val[c] = v
					p := img.Point(i+off[0], j+off[1], k+off[2])
					pos[c] = [3]float32{float32(p[0]), float32(p[1]), float32(p[2])}
				}
				// Fast reject: all corners on one side.
				below, above := 0, 0
				for _, v := range val {
					if v < isoF {
						below++
					} else {
						above++
					}
				}
				if below == 8 || above == 8 {
					continue
				}
				for _, t := range tets {
					marchTetra(mesh,
						[4][3]float32{pos[t[0]], pos[t[1]], pos[t[2]], pos[t[3]]},
						[4]float32{val[t[0]], val[t[1]], val[t[2]], val[t[3]]},
						isoF)
				}
			}
		}
	}
	return mesh, nil
}

// lerpEdge interpolates the iso crossing between two tetra corners.
func lerpEdge(pa, pb [3]float32, va, vb, iso float32) [3]float32 {
	d := vb - va
	t := float32(0.5)
	if d != 0 {
		t = (iso - va) / d
	}
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	return [3]float32{
		pa[0] + t*(pb[0]-pa[0]),
		pa[1] + t*(pb[1]-pa[1]),
		pa[2] + t*(pb[2]-pa[2]),
	}
}

// marchTetra emits the triangles of one tetrahedron. Vertices with value
// below iso are "inside"; the 16 sign cases reduce to none, one triangle,
// or a quad split into two triangles.
func marchTetra(mesh *TriangleMesh, p [4][3]float32, v [4]float32, iso float32) {
	var code int
	for i := 0; i < 4; i++ {
		if v[i] < iso {
			code |= 1 << i
		}
	}
	e := func(a, b int) [3]float32 { return lerpEdge(p[a], p[b], v[a], v[b], iso) }
	tri := func(a, b, c [3]float32) { mesh.AddTriangle(a, b, c, iso, iso, iso) }
	switch code {
	case 0x0, 0xF:
		return
	case 0x1, 0xE: // vertex 0 isolated
		tri(e(0, 1), e(0, 2), e(0, 3))
	case 0x2, 0xD: // vertex 1 isolated
		tri(e(1, 0), e(1, 3), e(1, 2))
	case 0x4, 0xB: // vertex 2 isolated
		tri(e(2, 0), e(2, 1), e(2, 3))
	case 0x8, 0x7: // vertex 3 isolated
		tri(e(3, 0), e(3, 2), e(3, 1))
	case 0x3, 0xC: // edge 0-1 inside (or outside)
		a, b, c, d := e(0, 2), e(0, 3), e(1, 3), e(1, 2)
		tri(a, b, c)
		tri(a, c, d)
	case 0x5, 0xA: // edge 0-2
		a, b, c, d := e(0, 1), e(2, 1), e(2, 3), e(0, 3)
		tri(a, b, c)
		tri(a, c, d)
	case 0x6, 0x9: // edge 1-2
		a, b, c, d := e(1, 0), e(2, 0), e(2, 3), e(1, 3)
		tri(a, b, c)
		tri(a, c, d)
	}
}
