package vtk

// Plane is the half-space dot(Normal, p) >= Offset.
type Plane struct {
	Normal [3]float32
	Offset float32
}

// Eval returns the signed distance-like value of p against the plane.
func (pl Plane) Eval(p [3]float32) float32 {
	return pl.Normal[0]*p[0] + pl.Normal[1]*p[1] + pl.Normal[2]*p[2] - pl.Offset
}

// ClipMesh keeps the part of the mesh on the positive side of the plane,
// splitting crossing triangles (VTK's vtkClipPolyData). The Gray-Scott
// pipeline combines this with multi-level isosurfaces to look inside the
// domain, as in the paper's Figure 3a.
func ClipMesh(m *TriangleMesh, pl Plane) *TriangleMesh {
	out := &TriangleMesh{}
	nt := m.NumTriangles()
	for t := 0; t < nt; t++ {
		var p [3][3]float32
		var s [3]float32
		var d [3]float32
		for v := 0; v < 3; v++ {
			base := 9*t + 3*v
			p[v] = [3]float32{m.Positions[base], m.Positions[base+1], m.Positions[base+2]}
			s[v] = m.Scalars[3*t+v]
			d[v] = pl.Eval(p[v])
		}
		clipTriangle(out, p, s, d)
	}
	return out
}

// clipTriangle emits the clipped polygon of one triangle (0, 1, or 2
// output triangles).
func clipTriangle(out *TriangleMesh, p [3][3]float32, s [3]float32, d [3]float32) {
	inside := 0
	for _, v := range d {
		if v >= 0 {
			inside++
		}
	}
	switch inside {
	case 0:
		return
	case 3:
		out.AddTriangle(p[0], p[1], p[2], s[0], s[1], s[2])
		return
	}
	// Walk the triangle edges, Sutherland-Hodgman style, collecting the
	// clipped polygon (3 or 4 vertices).
	var poly [][3]float32
	var polyS []float32
	for i := 0; i < 3; i++ {
		j := (i + 1) % 3
		if d[i] >= 0 {
			poly = append(poly, p[i])
			polyS = append(polyS, s[i])
		}
		if (d[i] >= 0) != (d[j] >= 0) {
			t := d[i] / (d[i] - d[j])
			q := [3]float32{
				p[i][0] + t*(p[j][0]-p[i][0]),
				p[i][1] + t*(p[j][1]-p[i][1]),
				p[i][2] + t*(p[j][2]-p[i][2]),
			}
			poly = append(poly, q)
			polyS = append(polyS, s[i]+t*(s[j]-s[i]))
		}
	}
	for i := 2; i < len(poly); i++ {
		out.AddTriangle(poly[0], poly[i-1], poly[i], polyS[0], polyS[i-1], polyS[i])
	}
}
