package vtk

import "encoding/binary"

// CellType enumerates the unstructured cell kinds we support (a subset of
// VTK's cell zoo sufficient for the Deep Water Impact proxy).
type CellType uint8

// Supported cell types, with VTK's numeric values.
const (
	CellTriangle   CellType = 5
	CellTetra      CellType = 10
	CellVoxel      CellType = 11
	CellHexahedron CellType = 12
)

// PointsPerCell returns the vertex count of a cell type.
func (t CellType) PointsPerCell() int {
	switch t {
	case CellTriangle:
		return 3
	case CellTetra:
		return 4
	case CellVoxel, CellHexahedron:
		return 8
	default:
		return 0
	}
}

// UnstructuredGrid is VTK's vtkUnstructuredGrid: explicit points plus a
// list of cells over them, with optional point and cell data.
type UnstructuredGrid struct {
	Points    []float32 // xyz interleaved, 3*NumPoints
	CellTypes []CellType
	Conn      []int32 // concatenated cell connectivity
	Offsets   []int32 // Offsets[i] is the start of cell i in Conn; len = NumCells+1
	PointData []*DataArray
	CellData  []*DataArray
}

// NewUnstructuredGrid returns an empty grid.
func NewUnstructuredGrid() *UnstructuredGrid {
	return &UnstructuredGrid{Offsets: []int32{0}}
}

// NumPoints returns the point count.
func (g *UnstructuredGrid) NumPoints() int { return len(g.Points) / 3 }

// NumCells returns the cell count.
func (g *UnstructuredGrid) NumCells() int { return len(g.CellTypes) }

// AddPoint appends a point and returns its index.
func (g *UnstructuredGrid) AddPoint(x, y, z float32) int32 {
	g.Points = append(g.Points, x, y, z)
	return int32(g.NumPoints() - 1)
}

// AddCell appends a cell over the given point indices.
func (g *UnstructuredGrid) AddCell(t CellType, pts ...int32) {
	g.CellTypes = append(g.CellTypes, t)
	g.Conn = append(g.Conn, pts...)
	g.Offsets = append(g.Offsets, int32(len(g.Conn)))
}

// Cell returns the connectivity slice of cell i.
func (g *UnstructuredGrid) Cell(i int) []int32 {
	return g.Conn[g.Offsets[i]:g.Offsets[i+1]]
}

// CellCentroid computes the centroid of cell i.
func (g *UnstructuredGrid) CellCentroid(i int) [3]float32 {
	var c [3]float32
	pts := g.Cell(i)
	for _, p := range pts {
		c[0] += g.Points[3*p]
		c[1] += g.Points[3*p+1]
		c[2] += g.Points[3*p+2]
	}
	n := float32(len(pts))
	if n > 0 {
		c[0] /= n
		c[1] /= n
		c[2] /= n
	}
	return c
}

// AddCellArray allocates and attaches a cell data array.
func (g *UnstructuredGrid) AddCellArray(name string, comps int) *DataArray {
	a := NewDataArray(name, comps, g.NumCells())
	g.CellData = append(g.CellData, a)
	return a
}

// CellArray finds a cell array by name.
func (g *UnstructuredGrid) CellArray(name string) (*DataArray, error) {
	return findArray(g.CellData, name)
}

// PointArray finds a point array by name.
func (g *UnstructuredGrid) PointArray(name string) (*DataArray, error) {
	return findArray(g.PointData, name)
}

// EncodedSize returns the exact length of Encode's output.
func (g *UnstructuredGrid) EncodedSize() int {
	return 12 + 4*len(g.Points) + len(g.CellTypes) + 4*len(g.Conn) +
		arraysEncodedSize(g.PointData) + arraysEncodedSize(g.CellData)
}

// Encode serializes the grid for staging (the VTU-file analog).
func (g *UnstructuredGrid) Encode() []byte {
	return g.AppendEncode(make([]byte, 0, g.EncodedSize()))
}

// AppendEncode appends the serialized grid to buf; with enough spare
// capacity (EncodedSize) it does not allocate, letting staging puts encode
// into pooled scratch.
func (g *UnstructuredGrid) AppendEncode(buf []byte) []byte {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], uint32(len(g.Points)))
	buf = append(buf, tmp[:]...)
	for _, v := range g.Points {
		binary.LittleEndian.PutUint32(tmp[:], floatBits(v))
		buf = append(buf, tmp[:]...)
	}
	binary.LittleEndian.PutUint32(tmp[:], uint32(len(g.CellTypes)))
	buf = append(buf, tmp[:]...)
	for _, t := range g.CellTypes {
		buf = append(buf, byte(t))
	}
	binary.LittleEndian.PutUint32(tmp[:], uint32(len(g.Conn)))
	buf = append(buf, tmp[:]...)
	for _, v := range g.Conn {
		binary.LittleEndian.PutUint32(tmp[:], uint32(v))
		buf = append(buf, tmp[:]...)
	}
	buf = encodeArrays(buf, g.PointData)
	buf = encodeArrays(buf, g.CellData)
	return buf
}

// DecodeUnstructuredGrid reverses Encode.
func DecodeUnstructuredGrid(data []byte) (*UnstructuredGrid, error) {
	g := &UnstructuredGrid{}
	if len(data) < 4 {
		return nil, ErrDecode
	}
	np := int(binary.LittleEndian.Uint32(data))
	data = data[4:]
	if np < 0 || np%3 != 0 || len(data) < 4*np {
		return nil, ErrDecode
	}
	g.Points = make([]float32, np)
	for i := range g.Points {
		g.Points[i] = floatFromBits(binary.LittleEndian.Uint32(data[4*i:]))
	}
	data = data[4*np:]
	if len(data) < 4 {
		return nil, ErrDecode
	}
	nc := int(binary.LittleEndian.Uint32(data))
	data = data[4:]
	if nc < 0 || len(data) < nc {
		return nil, ErrDecode
	}
	g.CellTypes = make([]CellType, nc)
	for i := range g.CellTypes {
		g.CellTypes[i] = CellType(data[i])
	}
	data = data[nc:]
	if len(data) < 4 {
		return nil, ErrDecode
	}
	cl := int(binary.LittleEndian.Uint32(data))
	data = data[4:]
	if cl < 0 || len(data) < 4*cl {
		return nil, ErrDecode
	}
	g.Conn = make([]int32, cl)
	for i := range g.Conn {
		g.Conn[i] = int32(binary.LittleEndian.Uint32(data[4*i:]))
	}
	data = data[4*cl:]
	// Rebuild offsets from cell types.
	g.Offsets = make([]int32, 1, nc+1)
	var off int32
	for _, t := range g.CellTypes {
		off += int32(t.PointsPerCell())
		g.Offsets = append(g.Offsets, off)
	}
	if int(off) != cl {
		return nil, ErrDecode
	}
	var err error
	g.PointData, data, err = decodeArrays(data)
	if err != nil {
		return nil, err
	}
	g.CellData, _, err = decodeArrays(data)
	if err != nil {
		return nil, err
	}
	return g, nil
}
