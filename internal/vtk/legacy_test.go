package vtk

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteLegacyUnstructured(t *testing.T) {
	g := NewUnstructuredGrid()
	p0 := g.AddPoint(0, 0, 0)
	p1 := g.AddPoint(1, 0, 0)
	p2 := g.AddPoint(0, 1, 0)
	p3 := g.AddPoint(0, 0, 1)
	g.AddCell(CellTetra, p0, p1, p2, p3)
	arr := g.AddCellArray("velocity", 1)
	arr.Data[0] = 2.5

	var buf bytes.Buffer
	if err := g.WriteLegacy(&buf, "dwi block"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# vtk DataFile Version 3.0",
		"DATASET UNSTRUCTURED_GRID",
		"POINTS 4 float",
		"CELLS 1 5",
		"CELL_TYPES 1",
		"10", // VTK_TETRA
		"CELL_DATA 1",
		"SCALARS velocity float 1",
		"2.5",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("legacy output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteLegacyPolyData(t *testing.T) {
	m := &TriangleMesh{}
	m.AddTriangle([3]float32{0, 0, 0}, [3]float32{1, 0, 0}, [3]float32{0, 1, 0}, 1, 2, 3)
	var buf bytes.Buffer
	if err := m.WriteLegacy(&buf, "isosurface"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"DATASET POLYDATA", "POINTS 3 float", "POLYGONS 1 4", "3 0 1 2", "NORMALS"} {
		if !strings.Contains(out, want) {
			t.Fatalf("polydata output missing %q", want)
		}
	}
}

func TestWriteLegacyStructuredPoints(t *testing.T) {
	img := NewImageData([3]int{2, 3, 4}, [3]float64{1, 2, 3}, [3]float64{0.5, 0.5, 0.5})
	img.AddPointArray("U", 1)
	var buf bytes.Buffer
	if err := img.WriteLegacy(&buf, "grayscott"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"DATASET STRUCTURED_POINTS", "DIMENSIONS 2 3 4", "ORIGIN 1 2 3", "SPACING 0.5 0.5 0.5", "POINT_DATA 24", "SCALARS U float 1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("structured points output missing %q", want)
		}
	}
}
