package vtk

import (
	"sync"

	"colza/internal/comm"
)

// Controller is the analog of vtkMultiProcessController: the parallel
// context a filter or compositor runs in. VTK abstracts communication
// behind vtkMultiProcessController/vtkCommunicator with MPI-backed child
// classes; the paper's contribution was a vtkMonaController implementing
// the same interface over MoNA. Here the same seam is the
// comm.Communicator interface — a Controller wraps whichever backend was
// injected and records which kind it is, so downstream consumers (IceT's
// communicator factory) can convert it without a hard dependency.
type Controller struct {
	kind string
	c    comm.Communicator
}

// NewController wraps a communicator. kind identifies the backing layer
// ("mona", "mpi", ...), mirroring the concrete controller classes.
func NewController(kind string, c comm.Communicator) *Controller {
	return &Controller{kind: kind, c: c}
}

// Kind returns the backing communication layer's name.
func (c *Controller) Kind() string { return c.kind }

// Communicator returns the wrapped communicator.
func (c *Controller) Communicator() comm.Communicator { return c.c }

// Rank returns the local process id within the controller's group.
func (c *Controller) Rank() int { return c.c.Rank() }

// Size returns the number of processes in the controller's group.
func (c *Controller) Size() int { return c.c.Size() }

var (
	globalMu         sync.RWMutex
	globalController *Controller
)

// SetGlobalController installs the process-wide controller, the analog of
// vtkMultiProcessController::SetGlobalController, which is how the paper
// points VTK at MoNA before setting up the in situ pipeline. In this
// repository each staging "process" is in-process state, so pipelines
// carry their controller explicitly; the global is provided for
// API-compatibility and single-deployment hosts.
func SetGlobalController(c *Controller) {
	globalMu.Lock()
	globalController = c
	globalMu.Unlock()
}

// GetGlobalController returns the process-wide controller (may be nil).
func GetGlobalController() *Controller {
	globalMu.RLock()
	defer globalMu.RUnlock()
	return globalController
}
