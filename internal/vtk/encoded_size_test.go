package vtk

import "testing"

// TestEncodedSizeExact: EncodedSize must equal len(Encode()) bit for bit —
// staging sizes pooled buffers from it, so an off-by-anything either wastes
// a size class or forces a growth realloc on the hot path.
func TestEncodedSizeExact(t *testing.T) {
	img := NewImageData([3]int{5, 4, 3}, [3]float64{1, 2, 3}, [3]float64{0.5, 1, 2})
	a := img.AddPointArray("density", 1)
	for i := range a.Data {
		a.Data[i] = float32(i)
	}
	img.AddPointArray("velocity", 3)
	if got, want := len(img.Encode()), img.EncodedSize(); got != want {
		t.Fatalf("ImageData: len(Encode) = %d, EncodedSize = %d", got, want)
	}

	g := NewUnstructuredGrid()
	p0 := g.AddPoint(0, 0, 0)
	p1 := g.AddPoint(1, 0, 0)
	p2 := g.AddPoint(0, 1, 0)
	p3 := g.AddPoint(0, 0, 1)
	g.AddCell(CellTetra, p0, p1, p2, p3)
	g.AddCell(CellTriangle, p0, p1, p2)
	ca := g.AddCellArray("pressure", 1)
	for i := range ca.Data {
		ca.Data[i] = float32(i) * 2
	}
	g.PointData = append(g.PointData, NewDataArray("temp", 1, g.NumPoints()))
	if got, want := len(g.Encode()), g.EncodedSize(); got != want {
		t.Fatalf("UnstructuredGrid: len(Encode) = %d, EncodedSize = %d", got, want)
	}

	// Empty datasets.
	if got, want := len(NewImageData([3]int{1, 1, 1}, [3]float64{}, [3]float64{}).Encode()),
		NewImageData([3]int{1, 1, 1}, [3]float64{}, [3]float64{}).EncodedSize(); got != want {
		t.Fatalf("empty ImageData: %d vs %d", got, want)
	}
	if got, want := len(NewUnstructuredGrid().Encode()), NewUnstructuredGrid().EncodedSize(); got != want {
		t.Fatalf("empty UnstructuredGrid: %d vs %d", got, want)
	}
}

// TestAppendEncodeNoAlloc: encoding into a buffer with enough spare
// capacity must not allocate.
func TestAppendEncodeNoAlloc(t *testing.T) {
	img := NewImageData([3]int{16, 16, 16}, [3]float64{}, [3]float64{1, 1, 1})
	a := img.AddPointArray("v", 1)
	for i := range a.Data {
		a.Data[i] = float32(i % 11)
	}
	scratch := make([]byte, 0, img.EncodedSize())
	allocs := testing.AllocsPerRun(20, func() {
		out := img.AppendEncode(scratch)
		if len(out) != img.EncodedSize() {
			t.Fatal("size mismatch")
		}
	})
	if allocs != 0 {
		t.Fatalf("AppendEncode into sized buffer allocates %.1f times", allocs)
	}
}

// TestAppendEncodeRoundTrip: encoding through AppendEncode decodes back to
// the same dataset as through Encode.
func TestAppendEncodeRoundTrip(t *testing.T) {
	img := NewImageData([3]int{3, 3, 2}, [3]float64{9, 8, 7}, [3]float64{1, 2, 4})
	a := img.AddPointArray("f", 2)
	for i := range a.Data {
		a.Data[i] = float32(i) - 7.5
	}
	enc := img.AppendEncode(nil)
	got, err := DecodeImageData(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dims != img.Dims || len(got.PointData) != 1 || got.PointData[0].Name != "f" {
		t.Fatalf("round trip lost structure: %+v", got)
	}
	for i, v := range got.PointData[0].Data {
		if v != a.Data[i] {
			t.Fatalf("data[%d] = %v, want %v", i, v, a.Data[i])
		}
	}
}
