package vtk

import "fmt"

// MergeUnstructured concatenates several unstructured grids into one,
// remapping point indices and concatenating data arrays by name (the
// block-merging step of the Deep Water Impact pipeline). All inputs must
// carry the same set of cell and point arrays.
func MergeUnstructured(grids ...*UnstructuredGrid) (*UnstructuredGrid, error) {
	out := NewUnstructuredGrid()
	if len(grids) == 0 {
		return out, nil
	}
	// Template arrays come from the first grid.
	for _, a := range grids[0].PointData {
		out.PointData = append(out.PointData, &DataArray{Name: a.Name, Components: a.Components})
	}
	for _, a := range grids[0].CellData {
		out.CellData = append(out.CellData, &DataArray{Name: a.Name, Components: a.Components})
	}
	for gi, g := range grids {
		base := int32(out.NumPoints())
		out.Points = append(out.Points, g.Points...)
		for ci := 0; ci < g.NumCells(); ci++ {
			cell := g.Cell(ci)
			remapped := make([]int32, len(cell))
			for i, p := range cell {
				remapped[i] = p + base
			}
			out.AddCell(g.CellTypes[ci], remapped...)
		}
		for _, dst := range out.PointData {
			src, err := g.PointArray(dst.Name)
			if err != nil {
				return nil, fmt.Errorf("vtk: merge: block %d lacks point array %q", gi, dst.Name)
			}
			dst.Data = append(dst.Data, src.Data...)
		}
		for _, dst := range out.CellData {
			src, err := g.CellArray(dst.Name)
			if err != nil {
				return nil, fmt.Errorf("vtk: merge: block %d lacks cell array %q", gi, dst.Name)
			}
			dst.Data = append(dst.Data, src.Data...)
		}
	}
	return out, nil
}
