package vtk

import (
	"math"
	"testing"
	"testing/quick"
)

func sphereField(dims [3]int, center [3]float64, spacing float64) *ImageData {
	img := NewImageData(dims, [3]float64{0, 0, 0}, [3]float64{spacing, spacing, spacing})
	arr := img.AddPointArray("dist", 1)
	for k := 0; k < dims[2]; k++ {
		for j := 0; j < dims[1]; j++ {
			for i := 0; i < dims[0]; i++ {
				p := img.Point(i, j, k)
				dx, dy, dz := p[0]-center[0], p[1]-center[1], p[2]-center[2]
				arr.Data[img.Index(i, j, k)] = float32(math.Sqrt(dx*dx + dy*dy + dz*dz))
			}
		}
	}
	return img
}

func TestImageDataBasics(t *testing.T) {
	img := NewImageData([3]int{4, 5, 6}, [3]float64{1, 2, 3}, [3]float64{0.5, 0.5, 0.5})
	if img.NumPoints() != 120 {
		t.Fatalf("NumPoints = %d", img.NumPoints())
	}
	if img.NumCells() != 3*4*5 {
		t.Fatalf("NumCells = %d", img.NumCells())
	}
	p := img.Point(2, 0, 4)
	if p[0] != 2 || p[1] != 2 || p[2] != 5 {
		t.Fatalf("Point = %v", p)
	}
	if img.Index(3, 4, 5) != 119 {
		t.Fatalf("Index = %d", img.Index(3, 4, 5))
	}
}

func TestImageDataEncodeDecodeRoundTrip(t *testing.T) {
	img := sphereField([3]int{5, 6, 7}, [3]float64{2, 2, 2}, 1)
	img.AddPointArray("extra", 3)
	dec, err := DecodeImageData(img.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if dec.Dims != img.Dims || dec.Origin != img.Origin || dec.Spacing != img.Spacing {
		t.Fatalf("geometry mismatch: %+v", dec)
	}
	if len(dec.PointData) != 2 {
		t.Fatalf("%d arrays", len(dec.PointData))
	}
	a, _ := dec.PointArray("dist")
	b, _ := img.PointArray("dist")
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatalf("data[%d] differs", i)
		}
	}
	if _, err := DecodeImageData([]byte{1, 2, 3}); err == nil {
		t.Fatal("short buffer should fail")
	}
}

func TestIsosurfaceSphere(t *testing.T) {
	// A radius-field isosurface at r=5 inside a 16^3 grid approximates a
	// sphere: vertices sit near distance 5 from the center, and the total
	// area approaches 4*pi*r^2.
	img := sphereField([3]int{16, 16, 16}, [3]float64{7.5, 7.5, 7.5}, 1)
	mesh, err := Isosurface(img, "dist", 5)
	if err != nil {
		t.Fatal(err)
	}
	if mesh.NumTriangles() < 100 {
		t.Fatalf("only %d triangles", mesh.NumTriangles())
	}
	for v := 0; v < mesh.NumVertices(); v++ {
		x := float64(mesh.Positions[3*v]) - 7.5
		y := float64(mesh.Positions[3*v+1]) - 7.5
		z := float64(mesh.Positions[3*v+2]) - 7.5
		r := math.Sqrt(x*x + y*y + z*z)
		if math.Abs(r-5) > 0.9 {
			t.Fatalf("vertex %d at distance %.3f from center, want ~5", v, r)
		}
	}
	area := meshArea(mesh)
	want := 4 * math.Pi * 25
	if math.Abs(area-want)/want > 0.15 {
		t.Fatalf("area = %.1f, want ~%.1f", area, want)
	}
}

func meshArea(m *TriangleMesh) float64 {
	var area float64
	for t := 0; t < m.NumTriangles(); t++ {
		var p [3][3]float64
		for v := 0; v < 3; v++ {
			for k := 0; k < 3; k++ {
				p[v][k] = float64(m.Positions[9*t+3*v+k])
			}
		}
		ux, uy, uz := p[1][0]-p[0][0], p[1][1]-p[0][1], p[1][2]-p[0][2]
		vx, vy, vz := p[2][0]-p[0][0], p[2][1]-p[0][1], p[2][2]-p[0][2]
		cx, cy, cz := uy*vz-uz*vy, uz*vx-ux*vz, ux*vy-uy*vx
		area += 0.5 * math.Sqrt(cx*cx+cy*cy+cz*cz)
	}
	return area
}

func TestIsosurfaceEmptyWhenOutOfRange(t *testing.T) {
	img := sphereField([3]int{8, 8, 8}, [3]float64{3.5, 3.5, 3.5}, 1)
	mesh, err := Isosurface(img, "dist", 1000)
	if err != nil {
		t.Fatal(err)
	}
	if mesh.NumTriangles() != 0 {
		t.Fatalf("%d triangles for out-of-range iso", mesh.NumTriangles())
	}
	if _, err := Isosurface(img, "no-such-field", 1); err == nil {
		t.Fatal("unknown field should fail")
	}
}

// Property: isosurfaces of per-block pieces together approximate the
// isosurface of the whole grid (block decomposition does not lose area) —
// the watertightness property parallel rendering relies on.
func TestIsosurfaceBlockDecompositionConsistent(t *testing.T) {
	whole := sphereField([3]int{16, 16, 16}, [3]float64{7.5, 7.5, 7.5}, 1)
	wholeMesh, _ := Isosurface(whole, "dist", 5)

	// Split along z into two overlapping halves (sharing the boundary
	// plane, as block decompositions do).
	half := func(z0, z1 int) *ImageData {
		img := NewImageData([3]int{16, 16, z1 - z0}, [3]float64{0, 0, float64(z0)}, [3]float64{1, 1, 1})
		arr := img.AddPointArray("dist", 1)
		src, _ := whole.PointArray("dist")
		for k := 0; k < z1-z0; k++ {
			for j := 0; j < 16; j++ {
				for i := 0; i < 16; i++ {
					arr.Data[img.Index(i, j, k)] = src.Data[whole.Index(i, j, k+z0)]
				}
			}
		}
		return img
	}
	lo, _ := Isosurface(half(0, 9), "dist", 5)
	hi, _ := Isosurface(half(8, 16), "dist", 5)
	got := meshArea(lo) + meshArea(hi)
	want := meshArea(wholeMesh)
	if math.Abs(got-want)/want > 0.01 {
		t.Fatalf("split area %.2f vs whole %.2f", got, want)
	}
}

func TestClipMeshHalves(t *testing.T) {
	img := sphereField([3]int{16, 16, 16}, [3]float64{7.5, 7.5, 7.5}, 1)
	mesh, _ := Isosurface(img, "dist", 5)
	clipped := ClipMesh(mesh, Plane{Normal: [3]float32{1, 0, 0}, Offset: 7.5})
	if clipped.NumTriangles() == 0 {
		t.Fatal("clip removed everything")
	}
	for v := 0; v < clipped.NumVertices(); v++ {
		if clipped.Positions[3*v] < 7.5-1e-3 {
			t.Fatalf("vertex %d at x=%f survived the clip", v, clipped.Positions[3*v])
		}
	}
	// Clipping a sphere in half keeps ~half the area.
	ratio := meshArea(clipped) / meshArea(mesh)
	if ratio < 0.4 || ratio > 0.6 {
		t.Fatalf("clip kept %.2f of the area, want ~0.5", ratio)
	}
	// Clip everything away.
	gone := ClipMesh(mesh, Plane{Normal: [3]float32{1, 0, 0}, Offset: 1e6})
	if gone.NumTriangles() != 0 {
		t.Fatal("far plane should remove all triangles")
	}
	// Keep everything.
	all := ClipMesh(mesh, Plane{Normal: [3]float32{1, 0, 0}, Offset: -1e6})
	if all.NumTriangles() != mesh.NumTriangles() {
		t.Fatal("permissive plane should keep all triangles")
	}
}

func TestTriangleMeshEncodeDecode(t *testing.T) {
	m := &TriangleMesh{}
	m.AddTriangle([3]float32{0, 0, 0}, [3]float32{1, 0, 0}, [3]float32{0, 1, 0}, 1, 2, 3)
	m.AddTriangle([3]float32{5, 5, 5}, [3]float32{6, 5, 5}, [3]float32{5, 6, 5}, 4, 5, 6)
	dec, err := DecodeTriangleMesh(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if dec.NumTriangles() != 2 {
		t.Fatalf("%d triangles", dec.NumTriangles())
	}
	for i := range m.Positions {
		if dec.Positions[i] != m.Positions[i] {
			t.Fatal("positions differ")
		}
	}
	if _, err := DecodeTriangleMesh([]byte{9}); err == nil {
		t.Fatal("garbage should fail to decode")
	}
}

func TestMeshNormalsAreUnit(t *testing.T) {
	m := &TriangleMesh{}
	m.AddTriangle([3]float32{0, 0, 0}, [3]float32{2, 0, 0}, [3]float32{0, 2, 0}, 0, 0, 0)
	for v := 0; v < 3; v++ {
		nx, ny, nz := m.Normals[3*v], m.Normals[3*v+1], m.Normals[3*v+2]
		l := math.Sqrt(float64(nx*nx + ny*ny + nz*nz))
		if math.Abs(l-1) > 1e-5 {
			t.Fatalf("normal length %f", l)
		}
		if nz != 1 {
			t.Fatalf("normal = (%f,%f,%f), want +z", nx, ny, nz)
		}
	}
}

func TestUnstructuredGridBuildAndRoundTrip(t *testing.T) {
	g := NewUnstructuredGrid()
	p0 := g.AddPoint(0, 0, 0)
	p1 := g.AddPoint(1, 0, 0)
	p2 := g.AddPoint(0, 1, 0)
	p3 := g.AddPoint(0, 0, 1)
	g.AddCell(CellTetra, p0, p1, p2, p3)
	vel := g.AddCellArray("velocity", 1)
	vel.Data[0] = 42

	if g.NumCells() != 1 || g.NumPoints() != 4 {
		t.Fatalf("cells=%d points=%d", g.NumCells(), g.NumPoints())
	}
	c := g.CellCentroid(0)
	if math.Abs(float64(c[0])-0.25) > 1e-6 {
		t.Fatalf("centroid = %v", c)
	}
	dec, err := DecodeUnstructuredGrid(g.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if dec.NumCells() != 1 || dec.CellTypes[0] != CellTetra {
		t.Fatalf("decoded cells wrong: %+v", dec.CellTypes)
	}
	arr, err := dec.CellArray("velocity")
	if err != nil || arr.Data[0] != 42 {
		t.Fatalf("cell data lost: %v %v", err, arr)
	}
	if _, err := DecodeUnstructuredGrid([]byte{3, 0}); err == nil {
		t.Fatal("garbage should fail")
	}
}

func TestMergeUnstructured(t *testing.T) {
	mk := func(offset float32, v float32) *UnstructuredGrid {
		g := NewUnstructuredGrid()
		a := g.AddPoint(offset, 0, 0)
		b := g.AddPoint(offset+1, 0, 0)
		c := g.AddPoint(offset, 1, 0)
		d := g.AddPoint(offset, 0, 1)
		g.AddCell(CellTetra, a, b, c, d)
		arr := g.AddCellArray("v", 1)
		arr.Data[0] = v
		return g
	}
	merged, err := MergeUnstructured(mk(0, 1), mk(10, 2), mk(20, 3))
	if err != nil {
		t.Fatal(err)
	}
	if merged.NumCells() != 3 || merged.NumPoints() != 12 {
		t.Fatalf("cells=%d points=%d", merged.NumCells(), merged.NumPoints())
	}
	// Point indices must be remapped, not aliased.
	if c := merged.Cell(2); c[0] != 8 {
		t.Fatalf("third cell connectivity = %v", c)
	}
	arr, _ := merged.CellArray("v")
	if arr.Data[0] != 1 || arr.Data[1] != 2 || arr.Data[2] != 3 {
		t.Fatalf("cell data = %v", arr.Data)
	}
	// Mismatched arrays fail.
	bad := NewUnstructuredGrid()
	bad.AddPoint(0, 0, 0)
	if _, err := MergeUnstructured(mk(0, 1), bad); err == nil {
		t.Fatal("merge with missing arrays should fail")
	}
}

func TestDataArrayRange(t *testing.T) {
	a := &DataArray{Name: "x", Components: 1, Data: []float32{3, -1, 7, 2}}
	lo, hi := a.Range()
	if lo != -1 || hi != 7 {
		t.Fatalf("range = (%f, %f)", lo, hi)
	}
	empty := &DataArray{Name: "e", Components: 1}
	lo, hi = empty.Range()
	if lo != 0 || hi != 0 {
		t.Fatalf("empty range = (%f, %f)", lo, hi)
	}
}

func TestControllerInjection(t *testing.T) {
	ctrl := NewController("mona", nil)
	if ctrl.Kind() != "mona" {
		t.Fatal("kind lost")
	}
	SetGlobalController(ctrl)
	if GetGlobalController() != ctrl {
		t.Fatal("global controller not installed")
	}
	SetGlobalController(nil)
}

// Property: encode/decode of random meshes round-trips.
func TestQuickMeshRoundTrip(t *testing.T) {
	f := func(tris []float32) bool {
		m := &TriangleMesh{}
		for i := 0; i+8 < len(tris) && m.NumTriangles() < 20; i += 9 {
			m.AddTriangle(
				[3]float32{tris[i], tris[i+1], tris[i+2]},
				[3]float32{tris[i+3], tris[i+4], tris[i+5]},
				[3]float32{tris[i+6], tris[i+7], tris[i+8]},
				tris[i], tris[i+1], tris[i+2])
		}
		dec, err := DecodeTriangleMesh(m.Encode())
		if err != nil {
			return false
		}
		if dec.NumTriangles() != m.NumTriangles() {
			return false
		}
		for i := range m.Positions {
			a, b := m.Positions[i], dec.Positions[i]
			if a != b && !(math.IsNaN(float64(a)) && math.IsNaN(float64(b))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
