package vtk

import "encoding/binary"

// ImageData is a regular grid (VTK's vtkImageData): Dims[k] points along
// axis k, with world-space origin and spacing. Point data arrays hold one
// tuple per grid point in x-fastest order.
type ImageData struct {
	Dims      [3]int
	Origin    [3]float64
	Spacing   [3]float64
	PointData []*DataArray
}

// NewImageData allocates a grid of the given dimensions.
func NewImageData(dims [3]int, origin, spacing [3]float64) *ImageData {
	for k := 0; k < 3; k++ {
		if dims[k] < 1 {
			dims[k] = 1
		}
		if spacing[k] == 0 {
			spacing[k] = 1
		}
	}
	return &ImageData{Dims: dims, Origin: origin, Spacing: spacing}
}

// NumPoints returns the point count.
func (img *ImageData) NumPoints() int { return img.Dims[0] * img.Dims[1] * img.Dims[2] }

// NumCells returns the cell (voxel) count.
func (img *ImageData) NumCells() int {
	n := 1
	for k := 0; k < 3; k++ {
		if img.Dims[k] < 2 {
			return 0
		}
		n *= img.Dims[k] - 1
	}
	return n
}

// Index converts (i, j, k) grid coordinates to a flat point index.
func (img *ImageData) Index(i, j, k int) int {
	return i + img.Dims[0]*(j+img.Dims[1]*k)
}

// Point returns the world-space position of grid point (i, j, k).
func (img *ImageData) Point(i, j, k int) [3]float64 {
	return [3]float64{
		img.Origin[0] + float64(i)*img.Spacing[0],
		img.Origin[1] + float64(j)*img.Spacing[1],
		img.Origin[2] + float64(k)*img.Spacing[2],
	}
}

// AddPointArray allocates and attaches a scalar point array.
func (img *ImageData) AddPointArray(name string, comps int) *DataArray {
	a := NewDataArray(name, comps, img.NumPoints())
	img.PointData = append(img.PointData, a)
	return a
}

// PointArray finds a point array by name.
func (img *ImageData) PointArray(name string) (*DataArray, error) {
	return findArray(img.PointData, name)
}

// EncodedSize returns the exact length of Encode's output: 12 bytes of
// dims, 24+24 of origin/spacing, then the point arrays.
func (img *ImageData) EncodedSize() int {
	return 60 + arraysEncodedSize(img.PointData)
}

// Encode serializes the grid for staging.
func (img *ImageData) Encode() []byte {
	return img.AppendEncode(make([]byte, 0, img.EncodedSize()))
}

// AppendEncode appends the serialized grid to buf and returns the extended
// slice. With cap(buf)-len(buf) >= EncodedSize() — e.g. a pooled scratch
// buffer — it performs no allocation, which is how staging puts reuse
// transfer buffers across iterations.
func (img *ImageData) AppendEncode(buf []byte) []byte {
	var tmp [8]byte
	for k := 0; k < 3; k++ {
		binary.LittleEndian.PutUint32(tmp[:4], uint32(img.Dims[k]))
		buf = append(buf, tmp[:4]...)
	}
	for k := 0; k < 3; k++ {
		binary.LittleEndian.PutUint64(tmp[:], uint64(int64(img.Origin[k]*1e9)))
		buf = append(buf, tmp[:]...)
	}
	for k := 0; k < 3; k++ {
		binary.LittleEndian.PutUint64(tmp[:], uint64(int64(img.Spacing[k]*1e9)))
		buf = append(buf, tmp[:]...)
	}
	return encodeArrays(buf, img.PointData)
}

// DecodeImageData reverses Encode.
func DecodeImageData(data []byte) (*ImageData, error) {
	if len(data) < 12+48 {
		return nil, ErrDecode
	}
	img := &ImageData{}
	for k := 0; k < 3; k++ {
		img.Dims[k] = int(binary.LittleEndian.Uint32(data[4*k:]))
		if img.Dims[k] < 1 || img.Dims[k] > 1<<16 {
			return nil, ErrDecode
		}
	}
	data = data[12:]
	for k := 0; k < 3; k++ {
		img.Origin[k] = float64(int64(binary.LittleEndian.Uint64(data[8*k:]))) / 1e9
	}
	data = data[24:]
	for k := 0; k < 3; k++ {
		img.Spacing[k] = float64(int64(binary.LittleEndian.Uint64(data[8*k:]))) / 1e9
	}
	data = data[24:]
	arrays, _, err := decodeArrays(data)
	if err != nil {
		return nil, err
	}
	for _, a := range arrays {
		if a.NumTuples() != img.NumPoints() {
			return nil, ErrDecode
		}
	}
	img.PointData = arrays
	return img, nil
}
