// Package mona is the Go analog of MoNA, the custom collective
// communication library the Colza paper built on top of Argobots and NA to
// replace MPI inside ParaView, VTK, and IceT. Its defining properties,
// preserved here, are:
//
//   - No world communicator. A communicator is created on demand from an
//     explicit, ordered list of addresses (obtained from the membership
//     service), so groups can grow and shrink between iterations.
//   - Progress yields. Blocking operations park a goroutine, not a core.
//   - Collectives use typical tree-based algorithms (binomial by default,
//     see internal/collectives).
//   - Message buffers are cached and reused, which is why MoNA outperforms
//     raw NA in the paper's Table I.
//
// Messages may arrive for a communicator the local process has not created
// yet (normal during elastic reconfiguration); they are parked in an orphan
// queue and drained when the communicator appears.
package mona

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"

	"colza/internal/bufpool"

	"colza/internal/collectives"
	"colza/internal/comm"
	"colza/internal/na"
)

// Errors returned by communicator operations.
var (
	// ErrDestroyed indicates the communicator was destroyed while an
	// operation was blocked on it.
	ErrDestroyed = errors.New("mona: communicator destroyed")
	// ErrNotMember indicates the local address is missing from the member
	// list given to CreateComm.
	ErrNotMember = errors.New("mona: local address not in member list")
	// ErrRank indicates an out-of-range peer rank.
	ErrRank = errors.New("mona: rank out of range")
	// ErrExists indicates a communicator id is already in use.
	ErrExists = errors.New("mona: communicator id already exists")
)

// header layout: commID u64 | srcRank i32 | tag i32.
const headerLen = 16

// Instance is a MoNA progress loop bound to one endpoint (the analog of
// mona_instance_t). One instance can host many communicators.
type Instance struct {
	ep na.Endpoint

	mu      sync.Mutex
	comms   map[uint64]*Comm
	orphans map[uint64][]comm.Msg
	closed  bool

	done chan struct{}
}

// NewInstance starts a progress loop on ep.
func NewInstance(ep na.Endpoint) *Instance {
	i := &Instance{
		ep:      ep,
		comms:   make(map[uint64]*Comm),
		orphans: make(map[uint64][]comm.Msg),
		done:    make(chan struct{}),
	}
	go i.progress()
	return i
}

// Addr returns the instance's address, to be shared with peers when
// assembling communicators.
func (i *Instance) Addr() string { return i.ep.Addr() }

// progress routes incoming messages to communicators' matching queues.
func (i *Instance) progress() {
	defer close(i.done)
	for {
		_, data, err := i.ep.Recv()
		if err != nil {
			i.mu.Lock()
			for _, c := range i.comms {
				c.mq.Destroy(ErrDestroyed)
			}
			i.comms = map[uint64]*Comm{}
			i.mu.Unlock()
			return
		}
		if len(data) < headerLen {
			continue
		}
		id := binary.LittleEndian.Uint64(data)
		src := int(int32(binary.LittleEndian.Uint32(data[8:])))
		tag := int(int32(binary.LittleEndian.Uint32(data[12:])))
		m := comm.Msg{Src: src, Tag: tag, Data: data[headerLen:]}
		i.mu.Lock()
		c, ok := i.comms[id]
		if !ok {
			i.orphans[id] = append(i.orphans[id], m)
			i.mu.Unlock()
			continue
		}
		i.mu.Unlock()
		c.mq.Push(m)
	}
}

// CreateComm assembles a communicator identified by id over the given
// ordered address list, which must contain this instance's address. All
// members must use the same id and the same ordering (Colza derives both
// from the activate-time 2PC). Orphaned messages already received for the
// id are delivered.
func (i *Instance) CreateComm(id uint64, addrs []string) (*Comm, error) {
	rank := -1
	for r, a := range addrs {
		if a == i.Addr() {
			rank = r
			break
		}
	}
	if rank < 0 {
		return nil, fmt.Errorf("%w: %s", ErrNotMember, i.Addr())
	}
	c := &Comm{
		inst:  i,
		id:    id,
		rank:  rank,
		addrs: append([]string(nil), addrs...),
		mq:    comm.NewMatchQueue(),
		algo:  collectives.DefaultAlgorithm,
	}
	i.mu.Lock()
	if i.closed {
		i.mu.Unlock()
		return nil, na.ErrClosed
	}
	if _, dup := i.comms[id]; dup {
		i.mu.Unlock()
		return nil, fmt.Errorf("%w: %d", ErrExists, id)
	}
	i.comms[id] = c
	stash := i.orphans[id]
	delete(i.orphans, id)
	i.mu.Unlock()
	for _, m := range stash {
		c.mq.Push(m)
	}
	return c, nil
}

// DestroyComm releases the communicator; blocked receivers fail with
// ErrDestroyed.
func (i *Instance) DestroyComm(c *Comm) {
	i.mu.Lock()
	if i.comms[c.id] == c {
		delete(i.comms, c.id)
	}
	delete(i.orphans, c.id)
	i.mu.Unlock()
	c.mq.Destroy(ErrDestroyed)
}

// Finalize closes the endpoint and tears down all communicators.
func (i *Instance) Finalize() {
	i.mu.Lock()
	if i.closed {
		i.mu.Unlock()
		return
	}
	i.closed = true
	i.mu.Unlock()
	i.ep.Close()
	<-i.done
}

// Comm is a communicator: an immutable, ordered member group. It satisfies
// collectives.PT2PT, and exposes the MPI-like operations the Colza
// pipelines need (the analogs of mona_comm_*).
type Comm struct {
	inst  *Instance
	id    uint64
	rank  int
	addrs []string
	mq    *comm.MatchQueue
	algo  collectives.Algorithm
}

// Comm implements the shared communicator abstraction injected into the
// visualization stack.
var _ comm.Communicator = (*Comm)(nil)

// ID returns the communicator id.
func (c *Comm) ID() uint64 { return c.id }

// Rank returns the caller's rank within the communicator.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of members.
func (c *Comm) Size() int { return len(c.addrs) }

// Addrs returns the ordered member addresses (a copy).
func (c *Comm) Addrs() []string { return append([]string(nil), c.addrs...) }

// SetAlgorithm overrides the collective algorithm (ablation A1); all
// members must agree.
func (c *Comm) SetAlgorithm(a collectives.Algorithm) { c.algo = a }

// Send transmits data to rank dst with the given tag. It completes locally
// (buffered at the receiver). The wire frame is built in a size-classed
// pooled buffer and recycled as soon as the endpoint is done with it (na
// Send does not retain the slice past return).
func (c *Comm) Send(dst, tag int, data []byte) error {
	if dst < 0 || dst >= len(c.addrs) {
		return fmt.Errorf("%w: %d of %d", ErrRank, dst, len(c.addrs))
	}
	buf := bufpool.Get(headerLen + len(data))
	binary.LittleEndian.PutUint64(buf, c.id)
	binary.LittleEndian.PutUint32(buf[8:], uint32(int32(c.rank)))
	binary.LittleEndian.PutUint32(buf[12:], uint32(int32(tag)))
	copy(buf[headerLen:], data)
	err := c.inst.ep.Send(c.addrs[dst], buf)
	bufpool.Put(buf)
	return err
}

// Recv blocks until a message from rank src with the given tag arrives.
func (c *Comm) Recv(src, tag int) ([]byte, error) {
	if src < 0 || src >= len(c.addrs) {
		return nil, fmt.Errorf("%w: %d of %d", ErrRank, src, len(c.addrs))
	}
	return c.mq.Recv(src, tag)
}

// Bcast distributes data from root (see collectives.Bcast).
func (c *Comm) Bcast(root, tag int, data []byte) ([]byte, error) {
	return collectives.Bcast(c, root, tag, data, c.algo)
}

// Reduce folds contributions at root (see collectives.Reduce).
func (c *Comm) Reduce(root, tag int, data []byte, op collectives.Op) ([]byte, error) {
	return collectives.Reduce(c, root, tag, data, op, c.algo)
}

// AllReduce folds contributions and distributes the result everywhere.
func (c *Comm) AllReduce(tag int, data []byte, op collectives.Op) ([]byte, error) {
	return collectives.AllReduce(c, tag, data, op, c.algo)
}

// Gather collects each rank's data at root.
func (c *Comm) Gather(root, tag int, data []byte) ([][]byte, error) {
	return collectives.Gather(c, root, tag, data)
}

// AllGather collects each rank's data everywhere.
func (c *Comm) AllGather(tag int, data []byte) ([][]byte, error) {
	return collectives.AllGather(c, tag, data, c.algo)
}

// Scatter distributes parts from root.
func (c *Comm) Scatter(root, tag int, parts [][]byte) ([]byte, error) {
	return collectives.Scatter(c, root, tag, parts)
}

// Barrier blocks until every member has entered it.
func (c *Comm) Barrier(tag int) error {
	return collectives.Barrier(c, tag)
}

// Request is a handle on a non-blocking operation.
type Request struct {
	ch  chan reqResult
	res *reqResult
}

type reqResult struct {
	data []byte
	err  error
}

// Wait blocks until the operation completes.
func (r *Request) Wait() ([]byte, error) {
	if r.res == nil {
		res := <-r.ch
		r.res = &res
	}
	return r.res.data, r.res.err
}

// Test reports whether the operation has completed, without blocking.
func (r *Request) Test() bool {
	if r.res != nil {
		return true
	}
	select {
	case res := <-r.ch:
		r.res = &res
		return true
	default:
		return false
	}
}

func async(fn func() ([]byte, error)) *Request {
	r := &Request{ch: make(chan reqResult, 1)}
	go func() {
		data, err := fn()
		r.ch <- reqResult{data: data, err: err}
	}()
	return r
}

// ISend is the non-blocking Send.
func (c *Comm) ISend(dst, tag int, data []byte) *Request {
	return async(func() ([]byte, error) { return nil, c.Send(dst, tag, data) })
}

// IRecv is the non-blocking Recv.
func (c *Comm) IRecv(src, tag int) *Request {
	return async(func() ([]byte, error) { return c.Recv(src, tag) })
}

// IBcast is the non-blocking Bcast.
func (c *Comm) IBcast(root, tag int, data []byte) *Request {
	return async(func() ([]byte, error) { return c.Bcast(root, tag, data) })
}

// IReduce is the non-blocking Reduce.
func (c *Comm) IReduce(root, tag int, data []byte, op collectives.Op) *Request {
	return async(func() ([]byte, error) { return c.Reduce(root, tag, data, op) })
}

// IBarrier is the non-blocking Barrier.
func (c *Comm) IBarrier(tag int) *Request {
	return async(func() ([]byte, error) { return nil, c.Barrier(tag) })
}

// SortedAddrs returns a deterministic ordering of a member set; every
// process deriving a communicator from the same set gets the same ranks.
func SortedAddrs(addrs []string) []string {
	out := append([]string(nil), addrs...)
	sort.Strings(out)
	return out
}
