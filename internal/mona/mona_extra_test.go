package mona

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"colza/internal/collectives"
	"colza/internal/na"
)

// TestCommIDReuseAfterDestroy: destroying a communicator frees its id for
// a later epoch with the same derived id.
func TestCommIDReuseAfterDestroy(t *testing.T) {
	insts, comms := group(t, 2, 55)
	insts[0].DestroyComm(comms[0])
	insts[1].DestroyComm(comms[1])
	addrs := []string{insts[0].Addr(), insts[1].Addr()}
	c0, err := insts[0].CreateComm(55, addrs)
	if err != nil {
		t.Fatalf("recreate after destroy: %v", err)
	}
	c1, err := insts[1].CreateComm(55, addrs)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := c1.Bcast(0, 1, nil)
		done <- err
	}()
	if _, err := c0.Bcast(0, 1, []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentCollectivesDistinctTags: two collectives proceed
// simultaneously on the same communicator when their tags differ.
func TestConcurrentCollectivesDistinctTags(t *testing.T) {
	_, comms := group(t, 4, 56)
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i, c := range comms {
		wg.Add(2)
		go func(i int, c *Comm) {
			defer wg.Done()
			var in []byte
			if c.Rank() == 0 {
				in = []byte("first")
			}
			got, err := c.Bcast(0, 100, in)
			if err == nil && string(got) != "first" {
				err = fmt.Errorf("tag 100 got %q", got)
			}
			errs[2*i] = err
		}(i, c)
		go func(i int, c *Comm) {
			defer wg.Done()
			var in []byte
			if c.Rank() == 0 {
				in = []byte("second")
			}
			got, err := c.Bcast(0, 200, in)
			if err == nil && string(got) != "second" {
				err = fmt.Errorf("tag 200 got %q", got)
			}
			errs[2*i+1] = err
		}(i, c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestAlgorithmOverrideOnLiveComm: collectives honor SetAlgorithm.
func TestAlgorithmOverrideOnLiveComm(t *testing.T) {
	_, comms := group(t, 5, 57)
	for _, c := range comms {
		c.SetAlgorithm(collectives.Algorithm{Kind: collectives.KAry, K: 3})
	}
	payload := []byte("kary")
	var wg sync.WaitGroup
	for _, c := range comms[1:] {
		wg.Add(1)
		go func(c *Comm) {
			defer wg.Done()
			got, err := c.Bcast(0, 9, nil)
			if err != nil || !bytes.Equal(got, payload) {
				t.Errorf("kary bcast: %v %q", err, got)
			}
		}(c)
	}
	if _, err := comms[0].Bcast(0, 9, payload); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
}

// TestShrinkingGroupCommunicator: a new epoch excluding a member still
// works, and the excluded instance can no longer participate under the
// new id.
func TestShrinkingGroupCommunicator(t *testing.T) {
	net := na.NewInprocNetwork()
	insts := make([]*Instance, 3)
	addrs3 := make([]string, 3)
	for i := range insts {
		ep, err := net.Listen(fmt.Sprintf("shrink%d", i))
		if err != nil {
			t.Fatal(err)
		}
		insts[i] = NewInstance(ep)
		addrs3[i] = insts[i].Addr()
	}
	defer func() {
		for _, i := range insts {
			i.Finalize()
		}
	}()
	// Epoch 2 spans only instances 0 and 1.
	addrs2 := addrs3[:2]
	c0, err := insts[0].CreateComm(2, addrs2)
	if err != nil {
		t.Fatal(err)
	}
	c1, err := insts[1].CreateComm(2, addrs2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := insts[2].CreateComm(2, addrs2); err == nil {
		t.Fatal("excluded instance created a communicator it is not in")
	}
	done := make(chan error, 1)
	go func() {
		_, err := c1.Reduce(0, 1, []byte{5}, collectives.XorBytes)
		done <- err
	}()
	res, err := c0.Reduce(0, 1, []byte{3}, collectives.XorBytes)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if res[0] != 6 {
		t.Fatalf("reduce over shrunken group = %d, want 6", res[0])
	}
}

// TestFinalizeDuringBlockedRecv: finalizing an instance releases a
// receiver blocked on one of its communicators.
func TestFinalizeDuringBlockedRecv(t *testing.T) {
	insts, comms := group(t, 2, 58)
	errCh := make(chan error, 1)
	go func() {
		_, err := comms[0].Recv(1, 42)
		errCh <- err
	}()
	insts[0].Finalize()
	if err := <-errCh; err == nil {
		t.Fatal("blocked Recv survived Finalize")
	}
}
