package mona

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"testing/quick"

	"colza/internal/collectives"
	"colza/internal/na"
)

// group builds n MoNA instances on a shared in-proc network and one
// communicator spanning them.
func group(t *testing.T, n int, commID uint64) ([]*Instance, []*Comm) {
	t.Helper()
	net := na.NewInprocNetwork()
	insts := make([]*Instance, n)
	addrs := make([]string, n)
	for r := 0; r < n; r++ {
		ep, err := net.Listen(fmt.Sprintf("mona%d", r))
		if err != nil {
			t.Fatal(err)
		}
		insts[r] = NewInstance(ep)
		addrs[r] = insts[r].Addr()
	}
	comms := make([]*Comm, n)
	for r := 0; r < n; r++ {
		c, err := insts[r].CreateComm(commID, addrs)
		if err != nil {
			t.Fatal(err)
		}
		comms[r] = c
	}
	t.Cleanup(func() {
		for _, i := range insts {
			i.Finalize()
		}
	})
	return insts, comms
}

// onAll runs fn concurrently on every rank's communicator.
func onAll(t *testing.T, comms []*Comm, fn func(c *Comm) error) {
	t.Helper()
	var wg sync.WaitGroup
	for _, c := range comms {
		wg.Add(1)
		go func(c *Comm) {
			defer wg.Done()
			if err := fn(c); err != nil {
				t.Errorf("rank %d: %v", c.Rank(), err)
			}
		}(c)
	}
	wg.Wait()
}

func TestSendRecvWithTags(t *testing.T) {
	_, comms := group(t, 2, 1)
	done := make(chan error, 1)
	go func() {
		// Send two tags out of order; receiver matches each.
		if err := comms[0].Send(1, 20, []byte("second")); err != nil {
			done <- err
			return
		}
		done <- comms[0].Send(1, 10, []byte("first"))
	}()
	got10, err := comms[1].Recv(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	got20, err := comms[1].Recv(0, 20)
	if err != nil {
		t.Fatal(err)
	}
	if string(got10) != "first" || string(got20) != "second" {
		t.Fatalf("got %q/%q", got10, got20)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestRankAndSize(t *testing.T) {
	_, comms := group(t, 5, 2)
	for r, c := range comms {
		if c.Rank() != r || c.Size() != 5 {
			t.Fatalf("rank %d: Rank=%d Size=%d", r, c.Rank(), c.Size())
		}
	}
}

func TestBcastAcrossInstances(t *testing.T) {
	_, comms := group(t, 7, 3)
	payload := []byte("elastic-staging")
	onAll(t, comms, func(c *Comm) error {
		var in []byte
		if c.Rank() == 2 {
			in = payload
		}
		got, err := c.Bcast(2, 50, in)
		if err != nil {
			return err
		}
		if !bytes.Equal(got, payload) {
			return fmt.Errorf("got %q", got)
		}
		return nil
	})
}

func TestReduceXor(t *testing.T) {
	n := 6
	_, comms := group(t, n, 4)
	inputs := make([][]byte, n)
	want := make([]byte, 32)
	for r := range inputs {
		inputs[r] = bytes.Repeat([]byte{byte(3*r + 1)}, 32)
		collectives.XorBytes(want, inputs[r])
	}
	onAll(t, comms, func(c *Comm) error {
		got, err := c.Reduce(0, 60, inputs[c.Rank()], collectives.XorBytes)
		if err != nil {
			return err
		}
		if c.Rank() == 0 && !bytes.Equal(got, want) {
			return fmt.Errorf("root mismatch")
		}
		return nil
	})
}

func TestAllReduceAndBarrier(t *testing.T) {
	n := 4
	_, comms := group(t, n, 5)
	onAll(t, comms, func(c *Comm) error {
		buf := make([]byte, 8)
		binary.LittleEndian.PutUint64(buf, math.Float64bits(1.5))
		got, err := c.AllReduce(70, buf, collectives.SumFloat64)
		if err != nil {
			return err
		}
		v := math.Float64frombits(binary.LittleEndian.Uint64(got))
		if v != 1.5*float64(n) {
			return fmt.Errorf("allreduce = %v", v)
		}
		return c.Barrier(80)
	})
}

func TestGatherScatterAllGather(t *testing.T) {
	n := 5
	_, comms := group(t, n, 6)
	onAll(t, comms, func(c *Comm) error {
		mine := []byte{byte(c.Rank() * 10)}
		all, err := c.AllGather(90, mine)
		if err != nil {
			return err
		}
		for r := 0; r < n; r++ {
			if len(all[r]) != 1 || all[r][0] != byte(r*10) {
				return fmt.Errorf("allgather[%d] = %v", r, all[r])
			}
		}
		parts, err := c.Gather(1, 95, mine)
		if err != nil {
			return err
		}
		back, err := c.Scatter(1, 96, parts)
		if err != nil {
			return err
		}
		if !bytes.Equal(back, mine) {
			return fmt.Errorf("scatter returned %v", back)
		}
		return nil
	})
}

// The key elastic property: messages that arrive before the local process
// has created the communicator are parked and delivered on creation.
func TestOrphanedMessagesDeliveredOnCreateComm(t *testing.T) {
	net := na.NewInprocNetwork()
	epA, _ := net.Listen("oa")
	epB, _ := net.Listen("ob")
	a, b := NewInstance(epA), NewInstance(epB)
	defer a.Finalize()
	defer b.Finalize()
	addrs := []string{a.Addr(), b.Addr()}
	ca, err := a.CreateComm(99, addrs)
	if err != nil {
		t.Fatal(err)
	}
	// A sends before B has created the communicator.
	if err := ca.Send(1, 5, []byte("early")); err != nil {
		t.Fatal(err)
	}
	cb, err := b.CreateComm(99, addrs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cb.Recv(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "early" {
		t.Fatalf("got %q", got)
	}
}

// Growing the group: build a new communicator with more members under a
// new id while the old one still exists — MoNA's no-world property.
func TestGrowGroupWithNewCommunicator(t *testing.T) {
	net := na.NewInprocNetwork()
	var insts []*Instance
	mk := func(name string) *Instance {
		ep, err := net.Listen(name)
		if err != nil {
			t.Fatal(err)
		}
		i := NewInstance(ep)
		insts = append(insts, i)
		return i
	}
	defer func() {
		for _, i := range insts {
			i.Finalize()
		}
	}()
	a, b := mk("g0"), mk("g1")
	addrs2 := []string{a.Addr(), b.Addr()}
	c2a, _ := a.CreateComm(1, addrs2)
	c2b, _ := b.CreateComm(1, addrs2)

	// Use epoch-1 communicator.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); c2b.Bcast(0, 1, nil) }()
	if _, err := c2a.Bcast(0, 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	// New member joins; epoch-2 communicator spans all three.
	c := mk("g2")
	addrs3 := []string{a.Addr(), b.Addr(), c.Addr()}
	comms := make([]*Comm, 3)
	for idx, inst := range []*Instance{a, b, c} {
		cm, err := inst.CreateComm(2, addrs3)
		if err != nil {
			t.Fatal(err)
		}
		comms[idx] = cm
	}
	payload := []byte("three-wide")
	for _, cm := range comms[1:] {
		wg.Add(1)
		go func(cm *Comm) {
			defer wg.Done()
			got, err := cm.Bcast(0, 2, nil)
			if err != nil || !bytes.Equal(got, payload) {
				t.Errorf("bcast on grown comm: %v %q", err, got)
			}
		}(cm)
	}
	if _, err := comms[0].Bcast(0, 2, payload); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
}

func TestCreateCommErrors(t *testing.T) {
	net := na.NewInprocNetwork()
	ep, _ := net.Listen("e0")
	i := NewInstance(ep)
	defer i.Finalize()
	if _, err := i.CreateComm(1, []string{"inproc://other"}); !errors.Is(err, ErrNotMember) {
		t.Fatalf("err = %v, want ErrNotMember", err)
	}
	if _, err := i.CreateComm(2, []string{i.Addr()}); err != nil {
		t.Fatal(err)
	}
	if _, err := i.CreateComm(2, []string{i.Addr()}); !errors.Is(err, ErrExists) {
		t.Fatalf("err = %v, want ErrExists", err)
	}
}

func TestDestroyCommUnblocksReceivers(t *testing.T) {
	insts, comms := group(t, 2, 7)
	errCh := make(chan error, 1)
	go func() {
		_, err := comms[0].Recv(1, 1)
		errCh <- err
	}()
	insts[0].DestroyComm(comms[0])
	if err := <-errCh; !errors.Is(err, ErrDestroyed) {
		t.Fatalf("err = %v, want ErrDestroyed", err)
	}
}

func TestSendRecvRankValidation(t *testing.T) {
	_, comms := group(t, 2, 8)
	if err := comms[0].Send(7, 0, nil); !errors.Is(err, ErrRank) {
		t.Fatalf("Send err = %v", err)
	}
	if _, err := comms[0].Recv(-1, 0); !errors.Is(err, ErrRank) {
		t.Fatalf("Recv err = %v", err)
	}
}

func TestNonBlockingOperations(t *testing.T) {
	_, comms := group(t, 3, 9)
	onAll(t, comms, func(c *Comm) error {
		var in []byte
		if c.Rank() == 0 {
			in = []byte("async")
		}
		req := c.IBcast(0, 11, in)
		data, err := req.Wait()
		if err != nil {
			return err
		}
		if string(data) != "async" {
			return fmt.Errorf("ibcast got %q", data)
		}
		// Wait is idempotent.
		if d2, _ := req.Wait(); !bytes.Equal(d2, data) {
			return fmt.Errorf("second Wait differs")
		}
		bar := c.IBarrier(12)
		for !bar.Test() {
		}
		_, err = bar.Wait()
		return err
	})
}

func TestISendIRecvPair(t *testing.T) {
	_, comms := group(t, 2, 10)
	rx := comms[1].IRecv(0, 33)
	tx := comms[0].ISend(1, 33, []byte("nb"))
	if _, err := tx.Wait(); err != nil {
		t.Fatal(err)
	}
	data, err := rx.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "nb" {
		t.Fatalf("got %q", data)
	}
}

func TestSortedAddrsDeterministic(t *testing.T) {
	in := []string{"inproc://c", "inproc://a", "inproc://b"}
	got := SortedAddrs(in)
	if got[0] != "inproc://a" || got[2] != "inproc://c" {
		t.Fatalf("got %v", got)
	}
	if in[0] != "inproc://c" {
		t.Fatal("input was mutated")
	}
}

// Property: reduce over a random number of instances with random payloads
// matches the sequential fold, across live MoNA instances.
func TestQuickMonaReduce(t *testing.T) {
	f := func(nRaw uint8, seed int64) bool {
		n := int(nRaw%5) + 2
		net := na.NewInprocNetwork()
		insts := make([]*Instance, n)
		addrs := make([]string, n)
		for r := 0; r < n; r++ {
			ep, err := net.Listen(fmt.Sprintf("q%d", r))
			if err != nil {
				return false
			}
			insts[r] = NewInstance(ep)
			addrs[r] = insts[r].Addr()
		}
		defer func() {
			for _, i := range insts {
				i.Finalize()
			}
		}()
		want := make([]byte, 16)
		inputs := make([][]byte, n)
		for r := range inputs {
			inputs[r] = make([]byte, 16)
			for j := range inputs[r] {
				inputs[r][j] = byte(seed>>uint(j%8) + int64(r*j))
			}
			collectives.XorBytes(want, inputs[r])
		}
		var wg sync.WaitGroup
		results := make([][]byte, n)
		errs := make([]error, n)
		for r := 0; r < n; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				c, err := insts[r].CreateComm(77, addrs)
				if err != nil {
					errs[r] = err
					return
				}
				results[r], errs[r] = c.Reduce(0, 1, inputs[r], collectives.XorBytes)
			}(r)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return false
			}
		}
		return bytes.Equal(results[0], want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
