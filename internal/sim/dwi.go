package sim

import (
	"math"

	"colza/internal/vtk"
)

// DWIConfig shapes the Deep Water Impact proxy. The real application
// replays VTU files from the Deep Water Impact Ensemble Dataset (512
// files per iteration, 30 iterations, cell counts growing from tens to
// hundreds of millions as the asteroid-impact splash develops). The
// dataset is not redistributable, so this proxy generates an expanding
// splash synthetically: an adaptive extraction of the cells touched by a
// growing crown-and-cavity field. The property the paper's elasticity
// experiments depend on — monotonically growing data size and rendering
// complexity over iterations (Fig. 1a) — is preserved.
type DWIConfig struct {
	Blocks     int // files per iteration in the original dataset (512, scaled down here)
	Iterations int // iterations replayed (30 in the paper)
	BaseRes    int // lattice resolution at iteration 1
	GrowthRes  int // extra lattice resolution per iteration
}

// DefaultDWI returns a laptop-scale configuration preserving the growth
// curve's shape.
func DefaultDWI() DWIConfig {
	return DWIConfig{Blocks: 64, Iterations: 30, BaseRes: 24, GrowthRes: 2}
}

// dwiField is the time-dependent implicit splash shape: a cavity sphere
// expanding from the impact point plus a rising crown ring. A lattice
// cell is part of the mesh when the field is inside the shell band.
func dwiField(x, y, z, t float64) float64 {
	// Impact at origin; water surface at y=0; domain [-1,1]^3.
	r := math.Sqrt(x*x + y*y + z*z)
	cavity := math.Abs(r - 0.15 - 0.55*t) // expanding shell
	ringR := math.Sqrt(x*x + z*z)
	crown := math.Sqrt(math.Pow(ringR-(0.2+0.5*t), 2)+math.Pow(y-0.35*t, 2)) - 0.05 - 0.18*t
	v := math.Min(cavity-0.05-0.1*t, crown)
	return v
}

// DWIIterationBlock generates one block of one iteration: the slice of
// the extracted unstructured mesh owned by blockID (the analog of one VTU
// file). Cells carry a "velocity" array used for volume-rendering color.
func DWIIterationBlock(cfg DWIConfig, iteration int, blockID int) *vtk.UnstructuredGrid {
	if iteration < 1 {
		iteration = 1
	}
	t := float64(iteration) / float64(cfg.Iterations)
	res := cfg.BaseRes + cfg.GrowthRes*iteration
	g := vtk.NewUnstructuredGrid()
	vel := g.AddCellArray("velocity", 1)

	// The lattice is split along z across blocks.
	zPer := res / cfg.Blocks
	if zPer < 1 {
		zPer = 1
	}
	z0 := blockID * zPer
	z1 := z0 + zPer
	if blockID == cfg.Blocks-1 {
		z1 = res
	}
	if z0 >= res {
		return g
	}
	h := 2.0 / float64(res)
	pointID := map[[3]int]int32{}
	pt := func(i, j, k int) int32 {
		key := [3]int{i, j, k}
		if id, ok := pointID[key]; ok {
			return id
		}
		id := g.AddPoint(float32(-1+float64(i)*h), float32(-1+float64(j)*h), float32(-1+float64(k)*h))
		pointID[key] = id
		return id
	}
	for k := z0; k < z1 && k < res; k++ {
		for j := 0; j < res; j++ {
			for i := 0; i < res; i++ {
				// Cell center.
				cx := -1 + (float64(i)+0.5)*h
				cy := -1 + (float64(j)+0.5)*h
				cz := -1 + (float64(k)+0.5)*h
				if dwiField(cx, cy, cz, t) > 0 {
					continue
				}
				// Hexahedral cell (VTK voxel ordering).
				g.AddCell(vtk.CellVoxel,
					pt(i, j, k), pt(i+1, j, k), pt(i, j+1, k), pt(i+1, j+1, k),
					pt(i, j, k+1), pt(i+1, j, k+1), pt(i, j+1, k+1), pt(i+1, j+1, k+1))
				speed := math.Sqrt(cx*cx+cy*cy+cz*cz) * (0.5 + t)
				vel.Data = append(vel.Data, float32(speed))
			}
		}
	}
	return g
}

// DWIGrowthRow is one line of the Fig. 1a reproduction.
type DWIGrowthRow struct {
	Iteration int
	Cells     int
	FileBytes int
}

// DWIGrowth tabulates cells and serialized size per iteration over all
// blocks — the reproduction of the paper's Figure 1a, which motivates
// elastic in situ visualization.
func DWIGrowth(cfg DWIConfig) []DWIGrowthRow {
	rows := make([]DWIGrowthRow, 0, cfg.Iterations)
	for it := 1; it <= cfg.Iterations; it++ {
		var cells, bytes int
		for b := 0; b < cfg.Blocks; b++ {
			g := DWIIterationBlock(cfg, it, b)
			cells += g.NumCells()
			bytes += len(g.Encode())
		}
		rows = append(rows, DWIGrowthRow{Iteration: it, Cells: cells, FileBytes: bytes})
	}
	return rows
}
