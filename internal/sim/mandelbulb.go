package sim

import (
	"math"

	"colza/internal/core"
	"colza/internal/vtk"
)

// MandelbulbConfig shapes the Mandelbulb miniapp, which stresses
// visualization pipelines with complex geometry (paper Sec. III-A). The
// global domain is a regular grid over [-1.2, 1.2]^3 partitioned along z
// into Blocks slabs; each client process owns several consecutive blocks.
type MandelbulbConfig struct {
	BlockDims [3]int  // grid points per block (x, y, z)
	Blocks    int     // total number of z-slabs
	Power     float64 // fractal power (8 is the classic bulb)
	MaxIter   int     // escape iteration cap (the scalar field)
}

// DefaultMandelbulb mirrors the paper's setup shape: cubic blocks, power
// 8.
func DefaultMandelbulb(blockDims [3]int, blocks int) MandelbulbConfig {
	return MandelbulbConfig{BlockDims: blockDims, Blocks: blocks, Power: 8, MaxIter: 32}
}

// mandelbulbEscape computes the escape iteration count for point c.
func mandelbulbEscape(cx, cy, cz, power float64, maxIter int) int {
	x, y, z := cx, cy, cz
	for it := 0; it < maxIter; it++ {
		r := math.Sqrt(x*x + y*y + z*z)
		if r > 2 {
			return it
		}
		theta := math.Acos(z / (r + 1e-12))
		phi := math.Atan2(y, x)
		rp := math.Pow(r, power)
		st := math.Sin(theta * power)
		x = rp*st*math.Cos(phi*power) + cx
		y = rp*st*math.Sin(phi*power) + cy
		z = rp*math.Cos(theta*power) + cz
	}
	return maxIter
}

// MandelbulbBlock generates block blockID of the decomposed domain at a
// given iteration. The iteration slowly rotates/scales the fractal (the
// time axis of the animation), so the workload is stable but not static.
func MandelbulbBlock(cfg MandelbulbConfig, blockID int, iteration uint64) *vtk.ImageData {
	const lo, hi = -1.2, 1.2
	bd := cfg.BlockDims
	nz := bd[2]
	// World-space extent of one block along z.
	zSpan := (hi - lo) / float64(cfg.Blocks)
	spacing := [3]float64{
		(hi - lo) / float64(bd[0]-1),
		(hi - lo) / float64(bd[1]-1),
		zSpan / float64(nz-1),
	}
	origin := [3]float64{lo, lo, lo + zSpan*float64(blockID)}
	img := vtk.NewImageData(bd, origin, spacing)
	arr := img.AddPointArray("value", 1)
	// The time axis scales the domain slightly so isosurfaces evolve.
	scale := 1 + 0.02*math.Sin(float64(iteration)*0.3)
	for k := 0; k < nz; k++ {
		for j := 0; j < bd[1]; j++ {
			for i := 0; i < bd[0]; i++ {
				p := img.Point(i, j, k)
				v := mandelbulbEscape(p[0]*scale, p[1]*scale, p[2]*scale, cfg.Power, cfg.MaxIter)
				arr.Data[img.Index(i, j, k)] = float32(v)
			}
		}
	}
	return img
}

// MandelbulbRankBlocks returns the block ids owned by one client rank
// (consecutive slabs, like the miniapp's z-partitioning with several
// blocks per process).
func MandelbulbRankBlocks(cfg MandelbulbConfig, rank, nranks int) []int {
	base := cfg.Blocks / nranks
	rem := cfg.Blocks % nranks
	n := base
	if rank < rem {
		n++
	}
	first := rank*base + min(rank, rem)
	out := make([]int, n)
	for i := range out {
		out[i] = first + i
	}
	return out
}

// MandelbulbMeta builds the staging metadata for a block.
func MandelbulbMeta(cfg MandelbulbConfig, blockID int) core.BlockMeta {
	return core.BlockMeta{
		Field:   "value",
		BlockID: blockID,
		Type:    "imagedata",
		Dims:    cfg.BlockDims,
	}
}
