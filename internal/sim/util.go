package sim

import "colza/internal/vtk"

// DecodeRoundTrip encodes and decodes an unstructured grid — a staging
// codec check used by tests and examples.
func DecodeRoundTrip(g *vtk.UnstructuredGrid) (*vtk.UnstructuredGrid, error) {
	return vtk.DecodeUnstructuredGrid(g.Encode())
}
