package sim

import (
	"math"
	"sync"
	"testing"

	"colza/internal/minimpi"
)

func TestGrayScottSingleRankConservesSanity(t *testing.T) {
	g := NewGrayScott(nil, [3]int{16, 16, 16}, DefaultGrayScott())
	if err := g.Step(10); err != nil {
		t.Fatal(err)
	}
	blk := g.Block()
	if blk.Dims != [3]int{16, 16, 16} {
		t.Fatalf("dims = %v", blk.Dims)
	}
	u, err := blk.PointArray("U")
	if err != nil {
		t.Fatal(err)
	}
	v, _ := blk.PointArray("V")
	// Fields must stay finite and inside a loose physical range.
	for i := range u.Data {
		if math.IsNaN(float64(u.Data[i])) || u.Data[i] < -0.5 || u.Data[i] > 1.5 {
			t.Fatalf("U[%d] = %f diverged", i, u.Data[i])
		}
		if math.IsNaN(float64(v.Data[i])) || v.Data[i] < -0.5 || v.Data[i] > 1.5 {
			t.Fatalf("V[%d] = %f diverged", i, v.Data[i])
		}
	}
	// The reaction must actually produce structure: V nonzero somewhere.
	_, vmax := v.Range()
	if vmax <= 0 {
		t.Fatal("V stayed identically zero; seeding broken")
	}
}

// Long runs on larger grids must stay numerically stable (the explicit
// scheme must respect the diffusion CFL limit).
func TestGrayScottLongRunStable(t *testing.T) {
	g := NewGrayScott(nil, [3]int{48, 48, 48}, DefaultGrayScott())
	if err := g.Step(250); err != nil {
		t.Fatal(err)
	}
	v, _ := g.Block().PointArray("V")
	lo, hi := v.Range()
	if math.IsNaN(float64(lo)) || math.IsInf(float64(lo), 0) || math.IsInf(float64(hi), 0) {
		t.Fatalf("V diverged: range [%f, %f]", lo, hi)
	}
	if lo < -0.2 || hi > 1.2 {
		t.Fatalf("V outside physical range: [%f, %f]", lo, hi)
	}
	if hi < 0.1 {
		t.Fatalf("pattern died out: V max %f", hi)
	}
}

// The parallel solver must agree with the serial solver for every tested
// decomposition — the 3D Cartesian halo exchange is only correct if this
// holds for z-splits (2), prime counts (3), and true 3D grids (8 = 2x2x2).
func TestGrayScottParallelMatchesSerial(t *testing.T) {
	global := [3]int{12, 12, 12}
	p := DefaultGrayScott()
	serial := NewGrayScott(nil, global, p)
	if err := serial.Step(5); err != nil {
		t.Fatal(err)
	}
	want, _ := serial.Block().PointArray("V")

	for _, nr := range []int{2, 3, 4, 8} {
		world := minimpi.World(nr)
		solvers := make([]*GrayScott, nr)
		var wg sync.WaitGroup
		errs := make([]error, nr)
		for r := 0; r < nr; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				solvers[r] = NewGrayScott(world[r], global, p)
				errs[r] = solvers[r].Step(5)
			}(r)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}
		// Stitch the V field back together by global offsets and compare.
		got := make([]float32, global[0]*global[1]*global[2])
		for r := 0; r < nr; r++ {
			blk := solvers[r].Block()
			arr, _ := blk.PointArray("V")
			off := solvers[r].Offset()
			dims := solvers[r].LocalDims()
			for z := 0; z < dims[2]; z++ {
				for y := 0; y < dims[1]; y++ {
					for x := 0; x < dims[0]; x++ {
						gi := (off[0] + x) + global[0]*((off[1]+y)+global[1]*(off[2]+z))
						got[gi] = arr.Data[blk.Index(x, y, z)]
					}
				}
			}
		}
		world[0].Finalize()
		for i := range got {
			if math.Abs(float64(got[i]-want.Data[i])) > 1e-5 {
				t.Fatalf("nr=%d: V[%d] = %f, serial %f", nr, i, got[i], want.Data[i])
			}
		}
	}
}

// Every decomposition must tile the domain exactly: offsets + local dims
// cover each cell once.
func TestGrayScottPartitionCoversDomain(t *testing.T) {
	for _, nr := range []int{2, 5, 6, 8} {
		world := minimpi.World(nr)
		global := [3]int{8, 8, 17}
		covered := make([]int, global[0]*global[1]*global[2])
		for r := 0; r < nr; r++ {
			g := NewGrayScott(world[r], global, DefaultGrayScott())
			d := g.LocalDims()
			off := g.Offset()
			pd := g.ProcDims()
			if pd[0]*pd[1]*pd[2] != nr {
				t.Fatalf("nr=%d: process grid %v", nr, pd)
			}
			for z := 0; z < d[2]; z++ {
				for y := 0; y < d[1]; y++ {
					for x := 0; x < d[0]; x++ {
						covered[(off[0]+x)+global[0]*((off[1]+y)+global[1]*(off[2]+z))]++
					}
				}
			}
		}
		world[0].Finalize()
		for i, c := range covered {
			if c != 1 {
				t.Fatalf("nr=%d: cell %d covered %d times", nr, i, c)
			}
		}
	}
}

func TestMandelbulbBlockFieldShape(t *testing.T) {
	cfg := DefaultMandelbulb([3]int{16, 16, 8}, 4)
	blk := MandelbulbBlock(cfg, 0, 1)
	arr, err := blk.PointArray("value")
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := arr.Range()
	if lo < 0 || hi > float32(cfg.MaxIter) {
		t.Fatalf("range (%f, %f) outside [0, %d]", lo, hi, cfg.MaxIter)
	}
	if lo == hi {
		t.Fatal("field is constant; fractal evaluation broken")
	}
	// Points inside the bulb (near origin) never escape.
	if v := mandelbulbEscape(0, 0, 0, 8, 32); v != 32 {
		t.Fatalf("origin escapes after %d iterations", v)
	}
	// Far points escape immediately-ish.
	if v := mandelbulbEscape(3, 0, 0, 8, 32); v > 2 {
		t.Fatalf("far point held on for %d iterations", v)
	}
}

func TestMandelbulbBlocksTileTheDomain(t *testing.T) {
	cfg := DefaultMandelbulb([3]int{8, 8, 8}, 4)
	prevTop := math.Inf(-1)
	for b := 0; b < 4; b++ {
		blk := MandelbulbBlock(cfg, b, 1)
		z0 := blk.Origin[2]
		if z0 < prevTop-1e-9 {
			t.Fatalf("block %d starts below previous block top", b)
		}
		prevTop = z0
	}
	// Iteration dependence: different iterations give different fields.
	a, _ := MandelbulbBlock(cfg, 0, 1).PointArray("value")
	b, _ := MandelbulbBlock(cfg, 0, 5).PointArray("value")
	same := true
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("iterations 1 and 5 produced identical fields")
	}
}

func TestMandelbulbRankBlocksPartition(t *testing.T) {
	cfg := DefaultMandelbulb([3]int{4, 4, 4}, 10)
	seen := map[int]bool{}
	for r := 0; r < 3; r++ {
		for _, b := range MandelbulbRankBlocks(cfg, r, 3) {
			if seen[b] {
				t.Fatalf("block %d assigned twice", b)
			}
			seen[b] = true
		}
	}
	if len(seen) != 10 {
		t.Fatalf("%d blocks assigned, want 10", len(seen))
	}
	meta := MandelbulbMeta(cfg, 7)
	if meta.BlockID != 7 || meta.Type != "imagedata" {
		t.Fatalf("meta = %+v", meta)
	}
}

func TestDWIGrowthIsMonotonic(t *testing.T) {
	cfg := DWIConfig{Blocks: 8, Iterations: 10, BaseRes: 12, GrowthRes: 2}
	rows := DWIGrowth(cfg)
	if len(rows) != 10 {
		t.Fatalf("%d rows", len(rows))
	}
	grewCells := 0
	for i := 1; i < len(rows); i++ {
		if rows[i].Cells > rows[i-1].Cells {
			grewCells++
		}
	}
	// The paper's Fig. 1a shows overall growth; require most steps to grow
	// and the final iteration to dwarf the first.
	if grewCells < 7 {
		t.Fatalf("cells grew on only %d/9 steps", grewCells)
	}
	if rows[len(rows)-1].Cells < 3*rows[0].Cells {
		t.Fatalf("final cells %d not >> initial %d", rows[len(rows)-1].Cells, rows[0].Cells)
	}
	if rows[len(rows)-1].FileBytes <= rows[0].FileBytes {
		t.Fatal("file size did not grow")
	}
}

func TestDWIBlocksPartitionAndData(t *testing.T) {
	cfg := DWIConfig{Blocks: 4, Iterations: 10, BaseRes: 16, GrowthRes: 1}
	totalCells := 0
	for b := 0; b < cfg.Blocks; b++ {
		g := DWIIterationBlock(cfg, 5, b)
		totalCells += g.NumCells()
		vel, err := g.CellArray("velocity")
		if err != nil {
			t.Fatal(err)
		}
		if vel.NumTuples() != g.NumCells() {
			t.Fatalf("block %d: %d velocities for %d cells", b, vel.NumTuples(), g.NumCells())
		}
		// Round-trips through the staging codec.
		dec, err := DecodeRoundTrip(g)
		if err != nil {
			t.Fatal(err)
		}
		if dec.NumCells() != g.NumCells() {
			t.Fatal("codec lost cells")
		}
	}
	if totalCells == 0 {
		t.Fatal("iteration 5 produced no cells at all")
	}
}

func TestDWIDeterministic(t *testing.T) {
	cfg := DefaultDWI()
	a := DWIIterationBlock(cfg, 7, 3)
	b := DWIIterationBlock(cfg, 7, 3)
	if a.NumCells() != b.NumCells() || a.NumPoints() != b.NumPoints() {
		t.Fatal("generator not deterministic")
	}
}
