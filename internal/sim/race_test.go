package sim

import (
	"bytes"
	"sync"
	"testing"

	"colza/internal/minimpi"
)

// Race audit: the client side of a Colza deployment generates simulation
// blocks from several goroutines at once (one per staged block), and a
// Gray-Scott run drives one GrayScott instance per rank concurrently with
// halo exchanges between them. Run with -race (the tier-1 gate does).

func TestConcurrentBlockGenerators(t *testing.T) {
	mb := DefaultMandelbulb([3]int{10, 10, 6}, 8)
	dwi := DWIConfig{Blocks: 8, Iterations: 3, BaseRes: 10, GrowthRes: 2}
	var wg sync.WaitGroup
	mbEnc := make([][]byte, mb.Blocks)
	dwiEnc := make([][]byte, dwi.Blocks)
	for b := 0; b < mb.Blocks; b++ {
		wg.Add(2)
		go func(b int) {
			defer wg.Done()
			mbEnc[b] = MandelbulbBlock(mb, b, 2).Encode()
			_ = MandelbulbMeta(mb, b)
		}(b)
		go func(b int) {
			defer wg.Done()
			dwiEnc[b] = DWIIterationBlock(dwi, 2, b).Encode()
		}(b)
	}
	wg.Wait()
	// Concurrent generation must match the sequential reference exactly.
	for b := 0; b < mb.Blocks; b++ {
		if !bytes.Equal(mbEnc[b], MandelbulbBlock(mb, b, 2).Encode()) {
			t.Fatalf("mandelbulb block %d differs from sequential generation", b)
		}
		if !bytes.Equal(dwiEnc[b], DWIIterationBlock(dwi, 2, b).Encode()) {
			t.Fatalf("dwi block %d differs from sequential generation", b)
		}
	}
}

func TestConcurrentGrayScottRanks(t *testing.T) {
	// A 2-rank Gray-Scott world stepping in lockstep: every Step performs
	// halo exchanges through the communicator, so the ranks genuinely run
	// concurrently and the detector sees the cross-rank channel traffic.
	const n = 2
	world := minimpi.World(n)
	defer world[0].Finalize()
	sims := make([]*GrayScott, n)
	for r := 0; r < n; r++ {
		sims[r] = NewGrayScott(world[r], [3]int{16, 8, 8}, DefaultGrayScott())
	}
	var wg sync.WaitGroup
	errs := make([]error, n)
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = sims[r].Step(3)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	for r := 0; r < n; r++ {
		blk := sims[r].Block()
		if blk.NumPoints() == 0 {
			t.Fatalf("rank %d produced an empty block", r)
		}
	}
}
