// Package sim implements the three data sources the Colza paper evaluates
// with: the Gray-Scott reaction-diffusion simulation, the Mandelbulb
// miniapp, and a proxy for the Deep Water Impact ensemble (the dataset is
// not redistributable, so a synthetic unstructured-mesh generator with the
// same growth behaviour stands in for it — see DESIGN.md, substitution 4).
package sim

import (
	"encoding/binary"
	"math"

	"colza/internal/comm"
	"colza/internal/vtk"
)

// GrayScottParams are the reaction-diffusion constants. The defaults
// produce the mitosis-like patterns of the paper's Figure 3a.
type GrayScottParams struct {
	Du, Dv float64 // diffusion rates
	F, K   float64 // feed / kill
	Dt     float64
	Noise  float64
	Seed   int64
}

// DefaultGrayScott returns a parameter set in the mitosis regime. The
// diffusion rates are chosen inside the explicit-Euler stability limit
// for the 3D seven-point Laplacian (dt * 6 * Du < 1).
func DefaultGrayScott() GrayScottParams {
	return GrayScottParams{Du: 0.12, Dv: 0.06, F: 0.02, K: 0.05, Dt: 1.0, Noise: 0.01, Seed: 7}
}

// GrayScott is one rank's share of a 3D Gray-Scott solver. As in the
// paper, the global domain is a regular grid with a *three-dimensional
// Cartesian partitioning* across the communicator's ranks (nil
// communicator = one rank owns everything); each step exchanges
// one-cell-deep face halos with up to six neighbours — a real parallel
// stencil simulation, not a data generator.
type GrayScott struct {
	c      comm.Communicator
	params GrayScottParams

	global [3]int
	pdims  [3]int // process grid
	coords [3]int // this rank's coordinates in the process grid
	local  [3]int // interior cells owned per axis
	offset [3]int // global index of the first interior cell per axis

	// Arrays are sized (local+2)^3 with one ghost layer on every face.
	u, v       []float32
	bufU, bufV []float32
	generation int
}

// dimsCreate factors size into a process grid minimizing halo surface
// for the given global domain (the MPI_Dims_create role).
func dimsCreate(size int, global [3]int) [3]int {
	best := [3]int{size, 1, 1}
	bestScore := math.Inf(1)
	for px := 1; px <= size; px++ {
		if size%px != 0 {
			continue
		}
		rem := size / px
		for py := 1; py <= rem; py++ {
			if rem%py != 0 {
				continue
			}
			pz := rem / py
			if px > global[0] || py > global[1] || pz > global[2] {
				continue
			}
			// Surface-to-volume of the local block: lower = less halo.
			lx := float64(global[0]) / float64(px)
			ly := float64(global[1]) / float64(py)
			lz := float64(global[2]) / float64(pz)
			score := lx*ly + ly*lz + lx*lz
			if score < bestScore {
				bestScore = score
				best = [3]int{px, py, pz}
			}
		}
	}
	return best
}

// axisRange splits n cells across p ranks, giving rank r its count and
// offset (remainder spread over the first ranks).
func axisRange(n, p, r int) (count, offset int) {
	base := n / p
	rem := n % p
	count = base
	if r < rem {
		count++
	}
	offset = r*base + min(r, rem)
	return
}

// NewGrayScott creates the local portion of a global nx*ny*nz domain.
func NewGrayScott(c comm.Communicator, global [3]int, p GrayScottParams) *GrayScott {
	rank, size := 0, 1
	if c != nil {
		rank, size = c.Rank(), c.Size()
	}
	g := &GrayScott{c: c, params: p, global: global}
	g.pdims = dimsCreate(size, global)
	// Rank -> coordinates, x-fastest.
	g.coords[0] = rank % g.pdims[0]
	g.coords[1] = (rank / g.pdims[0]) % g.pdims[1]
	g.coords[2] = rank / (g.pdims[0] * g.pdims[1])
	for a := 0; a < 3; a++ {
		g.local[a], g.offset[a] = axisRange(global[a], g.pdims[a], g.coords[a])
	}
	n := (g.local[0] + 2) * (g.local[1] + 2) * (g.local[2] + 2)
	g.u = make([]float32, n)
	g.v = make([]float32, n)
	g.bufU = make([]float32, n)
	g.bufV = make([]float32, n)
	g.seed()
	return g
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// idx addresses (x, y, z) including ghosts (0 = low ghost layer).
func (g *GrayScott) idx(x, y, z int) int {
	sx := g.local[0] + 2
	sy := g.local[1] + 2
	return x + sx*(y+sy*z)
}

// rankAt returns the rank at process coordinates, or -1 outside the grid.
func (g *GrayScott) rankAt(cx, cy, cz int) int {
	if cx < 0 || cy < 0 || cz < 0 || cx >= g.pdims[0] || cy >= g.pdims[1] || cz >= g.pdims[2] {
		return -1
	}
	return cx + g.pdims[0]*(cy+g.pdims[1]*cz)
}

// seed initializes U=1, V=0, with a perturbed cube at the domain center.
// Noise is a pure function of global coordinates so any decomposition
// yields the identical initial condition.
func (g *GrayScott) seed() {
	for i := range g.u {
		g.u[i] = 1
		g.v[i] = 0
	}
	noiseAt := func(gx, gy, gz int) float64 {
		h := uint64(g.params.Seed)*0x9E3779B97F4A7C15 + uint64(gx) + uint64(gy)<<20 + uint64(gz)<<40
		h ^= h >> 33
		h *= 0xFF51AFD7ED558CCD
		h ^= h >> 33
		h *= 0xC4CEB9FE1A85EC53
		h ^= h >> 33
		return float64(h>>11) / float64(1<<53)
	}
	cx, cy, cz := g.global[0]/2, g.global[1]/2, g.global[2]/2
	r := g.global[0] / 8
	if r < 2 {
		r = 2
	}
	for z := 0; z < g.local[2]; z++ {
		gz := g.offset[2] + z
		for y := 0; y < g.local[1]; y++ {
			gy := g.offset[1] + y
			for x := 0; x < g.local[0]; x++ {
				gx := g.offset[0] + x
				noise := g.params.Noise * (noiseAt(gx, gy, gz) - 0.5)
				i := g.idx(x+1, y+1, z+1)
				if abs(gx-cx) <= r && abs(gy-cy) <= r && abs(gz-cz) <= r {
					g.u[i] = 0.25 + float32(noise)
					g.v[i] = 0.5 + float32(noise)
				} else if noise > g.params.Noise*0.45 {
					g.v[i] = float32(noise)
				}
			}
		}
	}
}

func abs(a int) int {
	if a < 0 {
		return -a
	}
	return a
}

const haloTag = 4200

// face describes one of the six halo faces: the axis and the direction.
type face struct {
	axis int
	dir  int // -1 = low neighbour, +1 = high neighbour
}

// faces pairs opposite directions adjacently so face fi's matching
// neighbour face is fi^1.
var faces = [6]face{
	{0, -1}, {0, +1}, {1, -1}, {1, +1}, {2, -1}, {2, +1},
}

// planeExtents returns the two in-plane interior extents for an axis.
func (g *GrayScott) planeExtents(axis int) (int, int) {
	switch axis {
	case 0:
		return g.local[1], g.local[2]
	case 1:
		return g.local[0], g.local[2]
	default:
		return g.local[0], g.local[1]
	}
}

// planeIdx maps in-plane interior coordinates (a, b, both 1-based) to the
// array index on the axis-aligned plane at the given axis index.
func (g *GrayScott) planeIdx(axis, plane, a, b int) int {
	switch axis {
	case 0:
		return g.idx(plane, a, b)
	case 1:
		return g.idx(a, plane, b)
	default:
		return g.idx(a, b, plane)
	}
}

// packPlane copies the plane at index `plane` along `axis` into a flat
// buffer (strided gather for x/y faces).
func (g *GrayScott) packPlane(field []float32, axis, plane int) []float32 {
	d1, d2 := g.planeExtents(axis)
	out := make([]float32, d1*d2)
	k := 0
	for b := 1; b <= d2; b++ {
		for a := 1; a <= d1; a++ {
			out[k] = field[g.planeIdx(axis, plane, a, b)]
			k++
		}
	}
	return out
}

// unpackPlane writes a flat buffer into the plane at index `plane`.
func (g *GrayScott) unpackPlane(field []float32, axis, plane int, data []float32) {
	d1, d2 := g.planeExtents(axis)
	k := 0
	for b := 1; b <= d2; b++ {
		for a := 1; a <= d1; a++ {
			field[g.planeIdx(axis, plane, a, b)] = data[k]
			k++
		}
	}
}

// exchangeHalos fills the six ghost faces from the neighbours (clamped
// Neumann boundaries at the domain edges). All sends go out first (sends
// complete locally on this transport), then the receives drain.
func (g *GrayScott) exchangeHalos(field []float32) error {
	neighbour := func(f face) int {
		if g.c == nil {
			return -1
		}
		nc := g.coords
		nc[f.axis] += f.dir
		return g.rankAt(nc[0], nc[1], nc[2])
	}
	for fi, f := range faces {
		interiorPlane := 1
		ghostPlane := 0
		if f.dir > 0 {
			interiorPlane = g.local[f.axis]
			ghostPlane = g.local[f.axis] + 1
		}
		nb := neighbour(f)
		if nb < 0 {
			// Domain boundary: ghost = own boundary plane (Neumann).
			g.unpackPlane(field, f.axis, ghostPlane, g.packPlane(field, f.axis, interiorPlane))
			continue
		}
		tag := haloTag + (g.generation%2)*16 + fi
		if err := g.c.Send(nb, tag, encodeF32(g.packPlane(field, f.axis, interiorPlane))); err != nil {
			return err
		}
	}
	for fi, f := range faces {
		nb := neighbour(f)
		if nb < 0 {
			continue
		}
		ghostPlane := 0
		if f.dir > 0 {
			ghostPlane = g.local[f.axis] + 1
		}
		// The neighbour sent from its opposite face, tag fi^1.
		oppTag := haloTag + (g.generation%2)*16 + (fi ^ 1)
		raw, err := g.c.Recv(nb, oppTag)
		if err != nil {
			return err
		}
		g.unpackPlane(field, f.axis, ghostPlane, decodeF32(raw))
	}
	return nil
}

func encodeF32(src []float32) []byte {
	out := make([]byte, 4*len(src))
	for i, f := range src {
		binary.LittleEndian.PutUint32(out[4*i:], math.Float32bits(f))
	}
	return out
}

func decodeF32(raw []byte) []float32 {
	out := make([]float32, len(raw)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
	}
	return out
}

// Step advances the simulation n timesteps.
func (g *GrayScott) Step(n int) error {
	p := g.params
	for s := 0; s < n; s++ {
		for _, field := range [][]float32{g.u, g.v} {
			if err := g.exchangeHalos(field); err != nil {
				return err
			}
		}
		g.stepOnce(float32(p.Du), float32(p.Dv), float32(p.F), float32(p.K), float32(p.Dt))
		g.generation++
	}
	return nil
}

// stepOnce applies one explicit Euler update of the Gray-Scott PDEs.
// Jacobi update into double buffers: the new fields are computed entirely
// from the old ones, so results are identical under any decomposition.
func (g *GrayScott) stepOnce(du, dv, f, k, dt float32) {
	sx := g.local[0] + 2
	sy := g.local[1] + 2
	strideY := sx
	strideZ := sx * sy
	lap := func(field []float32, i int) float32 {
		return field[i-1] + field[i+1] + field[i-strideY] + field[i+strideY] +
			field[i-strideZ] + field[i+strideZ] - 6*field[i]
	}
	newU, newV := g.bufU, g.bufV
	for z := 1; z <= g.local[2]; z++ {
		for y := 1; y <= g.local[1]; y++ {
			row := g.idx(1, y, z)
			for x := 0; x < g.local[0]; x++ {
				i := row + x
				u, v := g.u[i], g.v[i]
				uvv := u * v * v
				newU[i] = u + dt*(du*lap(g.u, i)-uvv+f*(1-u))
				newV[i] = v + dt*(dv*lap(g.v, i)+uvv-(f+k)*v)
			}
		}
	}
	g.u, g.bufU = newU, g.u
	g.v, g.bufV = newV, g.v
}

// Block exports this rank's interior as an ImageData with the U and V
// point fields, positioned at its global offsets.
func (g *GrayScott) Block() *vtk.ImageData {
	img := vtk.NewImageData(
		g.local,
		[3]float64{float64(g.offset[0]), float64(g.offset[1]), float64(g.offset[2])},
		[3]float64{1, 1, 1})
	au := img.AddPointArray("U", 1)
	av := img.AddPointArray("V", 1)
	i := 0
	for z := 1; z <= g.local[2]; z++ {
		for y := 1; y <= g.local[1]; y++ {
			for x := 1; x <= g.local[0]; x++ {
				src := g.idx(x, y, z)
				au.Data[i] = g.u[src]
				av.Data[i] = g.v[src]
				i++
			}
		}
	}
	return img
}

// ZOffset returns the global z index of the first interior slab (kept for
// z-decomposed callers).
func (g *GrayScott) ZOffset() int { return g.offset[2] }

// Offset returns this rank's global index offsets.
func (g *GrayScott) Offset() [3]int { return g.offset }

// LocalDims returns this rank's interior dimensions.
func (g *GrayScott) LocalDims() [3]int { return g.local }

// ProcDims returns the process grid used for the decomposition.
func (g *GrayScott) ProcDims() [3]int { return g.pdims }
