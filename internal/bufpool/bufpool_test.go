package bufpool

import (
	"testing"
)

func TestGetLenAndClassCap(t *testing.T) {
	cases := []struct{ n, wantCap int }{
		{0, 256},
		{1, 256},
		{256, 256},
		{257, 512},
		{4096, 4096},
		{4097, 8192},
		{1 << 20, 1 << 20},
		{(1 << 20) + 1, 2 << 20},
		{1 << 26, 1 << 26},
	}
	for _, c := range cases {
		b := Get(c.n)
		if len(b) != c.n {
			t.Fatalf("Get(%d): len = %d", c.n, len(b))
		}
		if cap(b) < c.wantCap {
			t.Fatalf("Get(%d): cap = %d, want >= %d", c.n, cap(b), c.wantCap)
		}
		Put(b)
	}
}

func TestOversizeFallsBack(t *testing.T) {
	n := (1 << 26) + 1
	b := Get(n)
	if len(b) != n {
		t.Fatalf("len = %d", len(b))
	}
	Put(b) // must not panic; silently dropped
}

func TestTinyPutDropped(t *testing.T) {
	Put(make([]byte, 16)) // below min class: dropped, no panic
	Put(nil)
}

func TestRoundTripReuse(t *testing.T) {
	// A put buffer should be handed back for a same-class get. sync.Pool
	// gives no hard guarantee, so accept either but require no size mixup.
	b := Get(1000)
	for i := range b {
		b[i] = 0xAB
	}
	Put(b)
	c := Get(900)
	if len(c) != 900 || cap(c) < 900 {
		t.Fatalf("len=%d cap=%d", len(c), cap(c))
	}
	Put(c)
}

func TestForeignCapacityPut(t *testing.T) {
	// A non-power-of-two buffer lands in the class floor(log2(cap)) and can
	// serve gets up to that class size.
	Put(make([]byte, 3000))
	b := Get(2048)
	if len(b) != 2048 {
		t.Fatalf("len = %d", len(b))
	}
	Put(b)
}

func TestAllocsPerGetPutCycle(t *testing.T) {
	// Steady-state recycle of a large class must not allocate the payload:
	// only the Put-side interface boxing (1 small alloc) is tolerated.
	b := Get(1 << 20)
	Put(b)
	allocs := testing.AllocsPerRun(100, func() {
		x := Get(1 << 20)
		x[0] = 1
		Put(x)
	})
	if allocs > 2 {
		t.Fatalf("get/put cycle allocates %.1f times per op", allocs)
	}
}
