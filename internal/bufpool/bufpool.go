// Package bufpool provides process-wide, size-classed byte-slice pools for
// the staging hot path. The data path moves blocks that are identical in
// size iteration after iteration (a simulation re-stages the same grid every
// step), so recycling transfer buffers turns the per-block cost from
// allocate+zero into a pool hit.
//
// Ownership contract: a buffer obtained from Get is owned exclusively by the
// caller until Put. Put transfers ownership back to the pool — the caller
// must not retain any alias past that point, and in particular must not Put
// a buffer that is still exposed as a mercury bulk region or referenced by
// an in-flight send. Buffers are returned with their previous contents
// intact (no zeroing); callers must fully overwrite the bytes they use.
package bufpool

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

const (
	// minBits..maxBits bound the power-of-two size classes: 256 B .. 64 MiB.
	// Below 256 B a fresh make is as cheap as a pool hit; above 64 MiB a
	// buffer parked in a pool is too much memory to hold speculatively.
	minBits = 8
	maxBits = 26
)

var pools [maxBits - minBits + 1]sync.Pool

// Stats counts pool traffic; test helpers use it to assert hot paths
// actually recycle instead of silently falling back to make.
var (
	gets   atomic.Int64 // Get calls served (pooled classes only)
	misses atomic.Int64 // Get calls that had to allocate a fresh buffer
	puts   atomic.Int64 // Put calls that parked a buffer in a class
)

// Stats reports (gets, misses, puts) since process start.
func Stats() (g, m, p int64) {
	return gets.Load(), misses.Load(), puts.Load()
}

// classFor returns the pool index whose buffers hold at least n bytes, or
// -1 if n is outside the pooled range.
func classFor(n int) int {
	if n <= 0 {
		return 0
	}
	b := bits.Len(uint(n - 1)) // ceil(log2(n))
	if b < minBits {
		return 0
	}
	if b > maxBits {
		return -1
	}
	return b - minBits
}

// Get returns a slice of length n backed by pooled storage. Contents are
// undefined. Requests larger than the biggest class fall back to make.
func Get(n int) []byte {
	c := classFor(n)
	if c < 0 {
		return make([]byte, n)
	}
	gets.Add(1)
	if v := pools[c].Get(); v != nil {
		return v.([]byte)[:n]
	}
	misses.Add(1)
	return make([]byte, n, 1<<(c+minBits))
}

// Put returns b's storage to its size class. Slices too small or too large
// for any class are dropped. After Put the caller must not touch b again.
func Put(b []byte) {
	c := cap(b)
	if c < 1<<minBits {
		return
	}
	k := bits.Len(uint(c)) - 1 // floor(log2(cap)): largest class that fits
	if k > maxBits {
		// At least twice the top class: too much memory to park. Drop.
		return
	}
	puts.Add(1)
	pools[k-minBits].Put(b[:0])
}
