package dessim

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"
	"time"

	"colza/internal/obs"
)

// runScriptedWorkload drives a randomized ring workload on a fresh
// simulation and returns (a) the full event log and (b) the obs registry
// snapshot taken on the simulation's virtual clock. Two invocations with
// the same seed must produce byte-identical logs and identical snapshots:
// the DES kernel is the determinism anchor for every benchmark table in
// this repository, so any divergence here is a regression.
func runScriptedWorkload(t *testing.T, seed int64, procs, rounds int) (string, obs.Snapshot) {
	t.Helper()
	s := New(seed)
	reg := obs.NewRegistry()
	reg.SetClock(s.Now)

	var log bytes.Buffer
	boxes := make([]*Mailbox, procs)
	for i := range boxes {
		boxes[i] = s.NewMailbox(fmt.Sprintf("box-%d", i))
	}
	for i := 0; i < procs; i++ {
		i := i
		s.Spawn(fmt.Sprintf("proc-%d", i), func(p *Proc) {
			for r := 0; r < rounds; r++ {
				// Random virtual think time, then pass a token to the next
				// ring member with a random network delay. All randomness
				// comes from the simulation's seeded source.
				think := time.Duration(p.Sim().Rand().Intn(500)) * time.Microsecond
				p.Sleep(think)
				sent := p.Now()
				delay := time.Duration(p.Sim().Rand().Intn(200)+10) * time.Microsecond
				boxes[(i+1)%procs].Deliver(delay, Message{
					From: p.Name(),
					Data: sent,
				})
				msg, ok := boxes[i].Recv(p)
				if !ok {
					t.Errorf("%s round %d: mailbox closed early", p.Name(), r)
					return
				}
				lat := p.Now() - msg.Data.(time.Duration)
				reg.Histogram("dessim.token.latency").Observe(int64(lat))
				reg.Counter("dessim.token.count", "from", msg.From).Inc()
				fmt.Fprintf(&log, "%v %s round=%d from=%s lat=%v\n",
					p.Now(), p.Name(), r, msg.From, lat)
			}
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	reg.Histogram("dessim.run.duration").Observe(int64(s.Now()))
	return log.String(), reg.Snapshot()
}

func TestDeterminismSameSeedIdenticalRuns(t *testing.T) {
	for _, seed := range []int64{1, 42, 987654321} {
		log1, snap1 := runScriptedWorkload(t, seed, 5, 8)
		log2, snap2 := runScriptedWorkload(t, seed, 5, 8)
		if log1 != log2 {
			t.Fatalf("seed %d: event logs differ\n--- run 1 ---\n%s--- run 2 ---\n%s", seed, log1, log2)
		}
		if !reflect.DeepEqual(snap1, snap2) {
			t.Fatalf("seed %d: virtual-time obs snapshots differ:\n%+v\nvs\n%+v", seed, snap1, snap2)
		}
		if log1 == "" {
			t.Fatalf("seed %d: empty event log — the workload did not run", seed)
		}
	}
}

func TestDeterminismVirtualHistogramsExact(t *testing.T) {
	// The histogram recorded on virtual time must be bit-for-bit stable:
	// same Count, Sum, and bucket occupancy across runs — the property the
	// bench tables rely on when comparing configurations.
	_, snap1 := runScriptedWorkload(t, 7, 4, 12)
	_, snap2 := runScriptedWorkload(t, 7, 4, 12)
	for _, key := range []string{"dessim.token.latency", "dessim.run.duration"} {
		h1, ok1 := snap1.Histograms[key]
		h2, ok2 := snap2.Histograms[key]
		if !ok1 || !ok2 {
			t.Fatalf("histogram %q missing (run1=%v run2=%v)", key, ok1, ok2)
		}
		if h1.Count == 0 {
			t.Fatalf("histogram %q recorded nothing", key)
		}
		if !reflect.DeepEqual(h1, h2) {
			t.Fatalf("histogram %q differs across same-seed runs:\n%+v\nvs\n%+v", key, h1, h2)
		}
	}
	// Distinct seeds must actually change the timeline (guards against the
	// workload ignoring its random source, which would make the identical-
	// run assertions vacuous).
	logA, _ := runScriptedWorkload(t, 1, 4, 12)
	logB, _ := runScriptedWorkload(t, 2, 4, 12)
	if logA == logB {
		t.Fatal("different seeds produced identical logs — workload is not exercising randomness")
	}
}
