package dessim

import "time"

// Message is an item delivered through a Mailbox.
type Message struct {
	From string      // sender identity, interpreted by the layer above
	Data interface{} // payload
}

// Mailbox is an unbounded FIFO message queue usable by simulated processes.
// Deliveries always go through the event queue, so a process that sends and
// a process that receives never interact directly: ordering is governed by
// virtual time and, within a timestamp, by delivery order.
type Mailbox struct {
	sim     *Sim
	name    string
	queue   []Message
	waiters []*Proc
	closed  bool
}

// NewMailbox creates a mailbox bound to s.
func (s *Sim) NewMailbox(name string) *Mailbox {
	return &Mailbox{sim: s, name: name}
}

// Deliver enqueues msg after d of virtual time. It may be called from
// scheduler context or from a running process.
func (m *Mailbox) Deliver(d time.Duration, msg Message) {
	m.sim.After(d, func() {
		if m.closed {
			return
		}
		m.queue = append(m.queue, msg)
		m.wakeOne()
	})
}

func (m *Mailbox) wakeOne() {
	if len(m.waiters) == 0 {
		return
	}
	w := m.waiters[0]
	m.waiters = m.waiters[1:]
	m.sim.runProc(w)
}

// Close marks the mailbox closed and wakes all waiters; subsequent and
// pending Recv calls return ok=false once the queue drains.
func (m *Mailbox) Close() {
	m.sim.After(0, func() {
		m.closed = true
		for len(m.waiters) > 0 {
			m.wakeOne()
		}
	})
}

// Recv blocks the calling process until a message is available or the
// mailbox is closed and drained. It reports ok=false in the latter case.
func (m *Mailbox) Recv(p *Proc) (Message, bool) {
	for len(m.queue) == 0 {
		if m.closed {
			return Message{}, false
		}
		m.waiters = append(m.waiters, p)
		p.park("recv " + m.name)
	}
	msg := m.queue[0]
	m.queue = m.queue[1:]
	return msg, true
}

// TryRecv pops a message if one is immediately available.
func (m *Mailbox) TryRecv() (Message, bool) {
	if len(m.queue) == 0 {
		return Message{}, false
	}
	msg := m.queue[0]
	m.queue = m.queue[1:]
	return msg, true
}

// Len reports the number of queued messages.
func (m *Mailbox) Len() int { return len(m.queue) }
