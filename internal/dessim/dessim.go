// Package dessim implements a deterministic discrete-event simulation
// kernel. It is the substrate on which the communication micro-benchmarks
// (Tables I and II of the Colza paper) and the membership-propagation
// studies run: hundreds of simulated processes exchange messages in virtual
// time, with microsecond-scale network costs that real goroutine sleeps
// could not reproduce deterministically.
//
// The kernel uses an "activity-oriented" design: every simulated process is
// a goroutine, but at most one goroutine (either a process or the scheduler)
// runs at any moment. Control is handed off explicitly, so the simulation is
// single-threaded in behaviour, fully deterministic, and needs no locking in
// user code. Processes block in virtual time via Sleep and via Mailbox
// receive operations; the scheduler advances the clock to the next pending
// event when every process is blocked.
package dessim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Sim is a discrete-event simulation. The zero value is not usable; create
// instances with New.
type Sim struct {
	now    time.Duration
	events eventHeap
	seq    uint64
	yield  chan struct{}
	nextID int
	live   map[*Proc]bool
	rng    *rand.Rand
}

// New creates an empty simulation whose clock starts at zero. The seed
// initializes the simulation-wide random source handed to processes; two
// runs with the same seed and the same Spawn order produce identical event
// sequences.
func New(seed int64) *Sim {
	return &Sim{
		yield: make(chan struct{}),
		live:  make(map[*Proc]bool),
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current virtual time.
func (s *Sim) Now() time.Duration { return s.now }

// Rand returns the simulation's deterministic random source. It must only
// be used from scheduler context or from the currently running process.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// After schedules fn to run in scheduler context d from now. Negative
// delays are treated as zero.
func (s *Sim) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	s.schedule(s.now+d, fn)
}

func (s *Sim) schedule(t time.Duration, fn func()) {
	s.seq++
	heap.Push(&s.events, &event{t: t, seq: s.seq, fn: fn})
}

// Spawn registers a new process whose body starts executing at the current
// virtual time. Spawn may be called before Run or from a running process.
func (s *Sim) Spawn(name string, fn func(*Proc)) *Proc {
	s.nextID++
	p := &Proc{
		sim:    s,
		name:   name,
		id:     s.nextID,
		resume: make(chan struct{}),
		state:  "spawned",
	}
	s.live[p] = true
	s.schedule(s.now, func() {
		go func() {
			<-p.resume
			fn(p)
			p.state = "done"
			delete(s.live, p)
			s.yield <- struct{}{}
		}()
		s.runProc(p)
	})
	return p
}

// runProc hands control to p and waits until it parks or terminates. It
// must only be called from scheduler context.
func (s *Sim) runProc(p *Proc) {
	p.state = "running"
	p.resume <- struct{}{}
	<-s.yield
}

// Run executes events until none remain. It returns an error if processes
// are still blocked when the event queue drains (a virtual-time deadlock),
// naming the stuck processes.
func (s *Sim) Run() error {
	for s.events.Len() > 0 {
		ev := heap.Pop(&s.events).(*event)
		if ev.t > s.now {
			s.now = ev.t
		}
		ev.fn()
	}
	if len(s.live) > 0 {
		var names []string
		for p := range s.live {
			names = append(names, fmt.Sprintf("%s(%s)", p.name, p.state))
		}
		sort.Strings(names)
		return fmt.Errorf("dessim: deadlock at %v: %d blocked processes: %v", s.now, len(names), names)
	}
	return nil
}

// RunFor executes events until the clock would pass the deadline, leaving
// later events queued. It never reports deadlock; use Run for that.
func (s *Sim) RunFor(d time.Duration) {
	deadline := s.now + d
	for s.events.Len() > 0 && s.events[0].t <= deadline {
		ev := heap.Pop(&s.events).(*event)
		if ev.t > s.now {
			s.now = ev.t
		}
		ev.fn()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// Proc is a simulated process. All methods must be called from the
// process's own goroutine while it is the running process.
type Proc struct {
	sim    *Sim
	name   string
	id     int
	resume chan struct{}
	state  string
}

// Name returns the name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Sim returns the simulation this process belongs to.
func (p *Proc) Sim() *Sim { return p.sim }

// Now returns the current virtual time.
func (p *Proc) Now() time.Duration { return p.sim.now }

// Sleep blocks the process for d of virtual time.
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	s := p.sim
	s.schedule(s.now+d, func() { s.runProc(p) })
	p.park("sleeping")
}

// park yields control back to the scheduler until the process is resumed.
func (p *Proc) park(why string) {
	p.state = why
	p.sim.yield <- struct{}{}
	<-p.resume
	p.state = "running"
}

type event struct {
	t   time.Duration
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
