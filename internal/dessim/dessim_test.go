package dessim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestSleepAdvancesVirtualTime(t *testing.T) {
	s := New(1)
	var end time.Duration
	s.Spawn("sleeper", func(p *Proc) {
		p.Sleep(3 * time.Second)
		p.Sleep(2 * time.Second)
		end = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if end != 5*time.Second {
		t.Fatalf("end = %v, want 5s", end)
	}
	if s.Now() != 5*time.Second {
		t.Fatalf("sim now = %v, want 5s", s.Now())
	}
}

func TestNegativeSleepIsZero(t *testing.T) {
	s := New(1)
	s.Spawn("p", func(p *Proc) { p.Sleep(-time.Second) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Now() != 0 {
		t.Fatalf("now = %v, want 0", s.Now())
	}
}

func TestEventOrderingIsByTimeThenSequence(t *testing.T) {
	s := New(1)
	var order []int
	s.After(2*time.Millisecond, func() { order = append(order, 2) })
	s.After(time.Millisecond, func() { order = append(order, 1) })
	s.After(2*time.Millisecond, func() { order = append(order, 3) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestMailboxDeliveryLatency(t *testing.T) {
	s := New(1)
	mb := s.NewMailbox("mb")
	var got time.Duration
	var data interface{}
	s.Spawn("rx", func(p *Proc) {
		msg, ok := mb.Recv(p)
		if !ok {
			t.Error("mailbox closed unexpectedly")
			return
		}
		got = p.Now()
		data = msg.Data
	})
	s.Spawn("tx", func(p *Proc) {
		p.Sleep(time.Millisecond)
		mb.Deliver(5*time.Microsecond, Message{From: "tx", Data: 42})
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got != time.Millisecond+5*time.Microsecond {
		t.Fatalf("recv time = %v, want 1.005ms", got)
	}
	if data != 42 {
		t.Fatalf("data = %v, want 42", data)
	}
}

func TestMailboxFIFOAcrossManyMessages(t *testing.T) {
	s := New(1)
	mb := s.NewMailbox("mb")
	var got []int
	s.Spawn("rx", func(p *Proc) {
		for i := 0; i < 10; i++ {
			msg, ok := mb.Recv(p)
			if !ok {
				t.Error("closed early")
				return
			}
			got = append(got, msg.Data.(int))
		}
	})
	s.Spawn("tx", func(p *Proc) {
		for i := 0; i < 10; i++ {
			mb.Deliver(0, Message{Data: i})
			p.Sleep(time.Microsecond)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got[%d] = %d, want %d (fifo violated)", i, v, i)
		}
	}
}

func TestMailboxCloseWakesWaiters(t *testing.T) {
	s := New(1)
	mb := s.NewMailbox("mb")
	closedSeen := 0
	for i := 0; i < 3; i++ {
		s.Spawn("rx", func(p *Proc) {
			if _, ok := mb.Recv(p); !ok {
				closedSeen++
			}
		})
	}
	s.Spawn("closer", func(p *Proc) {
		p.Sleep(time.Millisecond)
		mb.Close()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if closedSeen != 3 {
		t.Fatalf("closedSeen = %d, want 3", closedSeen)
	}
}

func TestDeadlockDetection(t *testing.T) {
	s := New(1)
	mb := s.NewMailbox("never")
	s.Spawn("stuck", func(p *Proc) { mb.Recv(p) })
	if err := s.Run(); err == nil {
		t.Fatal("expected deadlock error, got nil")
	}
}

func TestSpawnFromRunningProcess(t *testing.T) {
	s := New(1)
	var childTime time.Duration
	s.Spawn("parent", func(p *Proc) {
		p.Sleep(time.Second)
		p.sim.Spawn("child", func(c *Proc) {
			c.Sleep(time.Second)
			childTime = c.Now()
		})
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if childTime != 2*time.Second {
		t.Fatalf("child finished at %v, want 2s", childTime)
	}
}

func TestRunForStopsAtDeadline(t *testing.T) {
	s := New(1)
	fired := 0
	s.After(time.Second, func() { fired++ })
	s.After(3*time.Second, func() { fired++ })
	s.RunFor(2 * time.Second)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if s.Now() != 2*time.Second {
		t.Fatalf("now = %v, want 2s", s.Now())
	}
	s.RunFor(2 * time.Second)
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
}

// TestDeterminism checks the core reproducibility property: same seed and
// same program produce the same trace of (time, event) pairs.
func TestDeterminism(t *testing.T) {
	run := func(seed int64) []time.Duration {
		s := New(seed)
		mb := s.NewMailbox("mb")
		var trace []time.Duration
		for i := 0; i < 4; i++ {
			s.Spawn("w", func(p *Proc) {
				for {
					msg, ok := mb.Recv(p)
					if !ok {
						return
					}
					p.Sleep(time.Duration(msg.Data.(int)) * time.Microsecond)
					trace = append(trace, p.Now())
				}
			})
		}
		s.Spawn("gen", func(p *Proc) {
			for i := 0; i < 40; i++ {
				d := p.Sim().Rand().Intn(50)
				mb.Deliver(time.Duration(d)*time.Microsecond, Message{Data: d})
				p.Sleep(time.Microsecond)
			}
			mb.Close()
		})
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return trace
	}
	a, b := run(7), run(7)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// Property: for any set of message delays, every message is received, in
// timestamp order, and the final clock equals the max delivery time.
func TestQuickMailboxDeliveryProperties(t *testing.T) {
	f := func(delaysRaw []uint16) bool {
		if len(delaysRaw) == 0 {
			return true
		}
		if len(delaysRaw) > 64 {
			delaysRaw = delaysRaw[:64]
		}
		s := New(3)
		mb := s.NewMailbox("mb")
		var recvTimes []time.Duration
		s.Spawn("rx", func(p *Proc) {
			for {
				_, ok := mb.Recv(p)
				if !ok {
					return
				}
				recvTimes = append(recvTimes, p.Now())
			}
		})
		var maxT time.Duration
		for _, d := range delaysRaw {
			dt := time.Duration(d) * time.Nanosecond
			if dt > maxT {
				maxT = dt
			}
			mb.Deliver(dt, Message{Data: d})
		}
		s.After(maxT, func() { mb.Close() })
		if err := s.Run(); err != nil {
			return false
		}
		if len(recvTimes) != len(delaysRaw) {
			return false
		}
		for i := 1; i < len(recvTimes); i++ {
			if recvTimes[i] < recvTimes[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
